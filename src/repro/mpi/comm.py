"""Simulated MPI communicator.

The API mirrors mpi4py where practical (``Get_rank``, ``Send``/``Recv`` for
NumPy buffers, lowercase object variants, ``allreduce``, ``split``...), so
the distributed algorithms read like ordinary MPI code.  Differences:

* Ranks are threads or forked processes (an executor-backend choice, see
  :mod:`repro.mpi.backends`); messages move by copy through a
  :class:`~repro.mpi.transport.TransportBase` implementation.
* Every operation *charges* a :class:`~repro.mpi.ledger.CostLedger` with the
  alpha-beta-gamma cost from the paper's Table I, enabling modeled-time
  measurements of the very runs the tests execute.
* Collectives move their bytes through per-communicator shared-memory
  windows on the process transport (every collective: one fence-ordered
  single-copy exchange; multi-MiB windows are huge-page-backed when the
  host provides them, see ``REPRO_SPMD_HUGEPAGES``) and fall back to
  point-to-point relays through group rank 0 elsewhere; either way their
  *charged* cost is the closed-form tree cost, identical on every member,
  not the cost of the implementation used to move the bytes.
* Non-blocking operations (``isend``/``irecv``/``isendrecv``,
  ``ireduce``/``iallreduce``/``ireduce_scatter_block``) defer completion
  to ``Request.wait()``: sends and window deposits are staged at post
  time, the blocking receives and fence waits — and every ledger charge —
  land at completion, so pipelined kernels overlap communication with
  compute while charging exactly what the blocking ops would.

Determinism: reductions fold contributions in group-rank order, so repeated
runs give bitwise-identical floating-point results.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro import resources
from repro.analysis.sanitizer import CollectiveCall, Sanitizer
from repro.config import default_for
from repro.mpi.errors import BufferMismatchError, CommunicatorError
from repro.mpi.ledger import CostLedger
from repro.mpi.process_transport import pack_collective, packed_nbytes
from repro.mpi.reduce_ops import SUM, ReduceOp
from repro.mpi.transport import TransportBase
from repro.perfmodel import collectives as cc


class _WireF32:
    """A float64 payload downcast to float32 for the wire.

    The ``REPRO_WIRE_COMPRESS`` knob wraps float64 ring-hop payloads
    (``sendrecv``/``isendrecv``) in this marker; the receiver upcasts back
    to float64 on arrival.  Both peers see the wrapper, so both charge the
    narrow word count — the ledger stays rank-symmetric.  Lossy (the low
    29 mantissa bits are dropped): bit-identity suites pin the knob off,
    and float32/mixed pipelines never wrap (their payloads are already
    narrow).
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray):
        self.data = data


def _words_of(obj: Any) -> int:
    """Modeled message size in 8-byte words."""
    if isinstance(obj, np.ndarray):
        return max(1, math.ceil(obj.nbytes / 8))
    if isinstance(obj, _WireF32):
        return max(1, math.ceil(obj.data.nbytes / 8))
    if isinstance(obj, (list, tuple)):
        return max(1, sum(_words_of(x) for x in obj))
    if isinstance(obj, dict):
        # Keys are tags (mode indices, field names) and ride in the
        # header; the values are the message body.
        return max(1, sum(_words_of(v) for v in obj.values()))
    return 1


def _copy_payload(obj: Any) -> Any:
    """Copy mutable payloads so sender and receiver never alias."""
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, _WireF32):
        return _WireF32(np.array(obj.data, copy=True))
    return obj


def _identity(obj: Any) -> Any:
    return obj


class Request:
    """Handle for a nonblocking operation with deferred completion.

    ``wait()`` runs the deferred completion exactly once — any blocking
    receive/fence happens there, and that is also where the operation's
    ledger charge lands, so pipelined code charges exactly what the
    blocking ops would — and caches the result for repeated waits.
    ``test()`` reports whether the handle has completed; there is no
    background progress thread, so a request only completes inside
    ``wait()`` (or when the communicator force-completes it to recycle a
    non-blocking collective's window buffer).

    SPMD discipline: like the blocking collectives, the posts *and* the
    waits of non-blocking collectives must occur in the same order on
    every member relative to the communicator's other collectives.
    Under ``REPRO_SANITIZE >= 1`` the handle is strict MPI: a request
    never waited fails finalize (:class:`RequestLeakError`) and a second
    user ``wait()`` raises :class:`RequestStateError` even though the
    unsanitized runtime would serve it from the cache.
    """

    def __init__(
        self,
        wait_fn: Callable[[], Any],
        sanitizer: Sanitizer | None = None,
        record: Any = None,
    ):
        self._wait_fn = wait_fn
        self._done = False
        self._value: Any = None
        self._san = sanitizer
        self._record = record

    def wait(self) -> Any:
        if self._san is not None:
            self._san.user_wait(self._record)
        return self._force()

    def _force(self) -> Any:
        """Complete without user-wait accounting (runtime internal: the
        communicator force-completes pipelined rounds to recycle window
        buffers, which must not count as the user's one wait)."""
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        """Whether :meth:`wait` has completed.  (No true background progress.)"""
        return self._done


class Communicator:
    """A group of simulated ranks with point-to-point and collective ops."""

    def __init__(
        self,
        transport: TransportBase,
        ledger: CostLedger,
        comm_id: Hashable,
        members: Sequence[int],
        world_rank: int,
        sanitizer: Sanitizer | None = None,
        faults=None,
    ):
        members = tuple(members)
        if len(set(members)) != len(members):
            raise CommunicatorError(f"duplicate members in group: {members}")
        if world_rank not in members:
            raise CommunicatorError(
                f"world rank {world_rank} is not a member of group {members}"
            )
        self._transport = transport
        self._ledger = ledger
        self._comm_id = comm_id
        self._members = members
        self._world_rank = world_rank
        self._rank = members.index(world_rank)
        self._coll_seq = 0
        # Pre-send copy is only needed when the transport delivers by
        # reference (thread backend); copying transports already isolate
        # sender and receiver when they encode the payload.
        self._tx = (
            _identity
            if getattr(transport, "copies_on_send", False)
            else _copy_payload
        )
        # Wire compression (REPRO_WIRE_COMPRESS): resolved once per
        # communicator — never per message — so the whole run sees one
        # consistent setting (children created by ``split`` re-resolve
        # the same environment and agree).
        self._wire32 = bool(default_for("compress_wire"))
        # Lazily opened per-communicator collective windows (process
        # transport only): a P-slot window for the one-contribution-per-
        # rank collectives and a P×P pair-slotted one for scatter and
        # alltoall; the generation counter keys the name-exchange tags.
        self._win = None
        self._mwin = None
        self._win_gen = 0
        # Double-buffered non-blocking collective windows: posts alternate
        # between two dedicated window generations so round i+1 can be
        # posted while stragglers are still fencing round i.  (A single
        # window would deadlock the post-then-wait pipeline: round i+1's
        # reuse fence waits on `done` flags the other ranks only publish
        # at their wait of round i, which follows their own post of round
        # i+1.)  ``_nb_pending`` remembers this rank's outstanding request
        # per buffer so a third post force-completes the round it reuses.
        self._nb_wins: list[Any] = [None, None]
        self._nb_pending: list[Request | None] = [None, None]
        self._nb_toggle = 0
        # SPMD sanitizer (None when REPRO_SANITIZE=0): one per-rank
        # instance shared by every communicator of the rank, so request
        # bookkeeping and the last-collective deadlock context span
        # `split` children too.
        self._san = sanitizer
        self._san_sig: CollectiveCall | None = None
        # Fault injector (None unless REPRO_FAULTS / run_spmd(faults=) is
        # active): every collective entry fires its op-name site before
        # any protocol traffic, so injected failures land at a precise,
        # reproducible point in the collective schedule.  Shared across
        # `split` children like the sanitizer.
        self._faults = faults

    # -- identity ----------------------------------------------------------

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._members)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    @property
    def world_rank(self) -> int:
        return self._world_rank

    @property
    def ledger(self) -> CostLedger:
        return self._ledger

    def section(self, label: str):
        """Attribute subsequent charges (this thread) to ``label``."""
        return self._ledger.section(label)

    def add_flops(self, flops: int) -> None:
        """Charge local compute to this rank's modeled clock."""
        self._ledger.charge_flops(self._world_rank, flops)

    def note_memory(self, words: int) -> None:
        self._ledger.note_memory(self._world_rank, words)

    def _check_peer(self, peer: int, name: str) -> int:
        if not 0 <= peer < self.size:
            raise CommunicatorError(
                f"{name}={peer} out of range for communicator of size {self.size}"
            )
        return peer

    # -- SPMD sanitizer ------------------------------------------------------
    #
    # At REPRO_SANITIZE >= 1 every collective entry records a signature
    # (op, sequence number, root, reduction op, call site) and the group
    # cross-checks it before moving bytes.  On the window transport the
    # check costs one extra int64 (a digest of the signature) riding the
    # size fence that every exchange already performs; a mismatch then
    # triggers a full point-to-point signature exchange purely to build
    # the diagnostic.  On window-less transports (thread backend) the
    # full signatures travel an uncharged point-to-point all-to-all at
    # entry.  Both paths are symmetric — no rank plays collector — so
    # the verification itself can never introduce a new deadlock among
    # ranks that agree.  Note the exchange makes every verified
    # collective synchronizing on the point-to-point path (MPI always
    # permits collectives to synchronize, so portable programs are
    # unaffected).  Limitations: verification cannot pair calls that use
    # different window objects (e.g. ``alltoall`` against ``bcast``) or
    # diverging sequence numbers — those still deadlock, but the timeout
    # arrives annotated with this rank's last collective and call site.

    @property
    def sanitizer(self) -> Sanitizer | None:
        """The rank's sanitizer instance, or ``None`` at REPRO_SANITIZE=0."""
        return self._san

    def _san_enter(
        self,
        op: str,
        seq: int,
        root: int | None = None,
        reduce_op: ReduceOp | None = None,
        value: Any = None,
        windowed: bool = True,
    ) -> CollectiveCall | None:
        """Record entry into a collective; on window-less transports also
        run the symmetric signature exchange immediately.

        Also the per-collective fault/liveness hook (it runs at the top
        of *every* blocking collective, sanitizer on or off): the run
        deadline is checked cooperatively, the status board note makes
        this op the rank's last-known context for death post-mortems,
        and the injector fires the op-name site.
        """
        resources.check_deadline(op)
        self._transport.note_collective(op, seq)
        if self._faults is not None:
            self._faults.fire(op)
        if self._san is None:
            return None
        sig = self._san.collective(
            op, seq, self._rank, root=root, reduce_op=reduce_op, value=value
        )
        self._san_sig = sig
        if self.size > 1 and (
            not windowed or not self._transport.windows_enabled
        ):
            self._san_put_sigs(sig)
            self._san_collect_sigs(sig)
        return sig

    def _san_put_sigs(self, sig: CollectiveCall) -> None:
        """Deposit this rank's signature for every peer (uncharged)."""
        wire = sig.wire()
        for dst in range(self.size):
            if dst != self._rank:
                self._put_key(self._rank, dst, ("san", sig.seq), wire)

    def _san_collect_sigs(self, sig: CollectiveCall) -> None:
        """Collect every peer's signature for ``sig``'s sequence number
        and raise if any diverges from ours."""
        mine = sig.protocol_key()
        peers = []
        diverged = False
        for src in range(self.size):
            if src == self._rank:
                continue
            peer = CollectiveCall.from_wire(
                self._transport.get(self._key(src, self._rank, ("san", sig.seq)))
            )
            peers.append(peer)
            if peer.protocol_key() != mine:
                diverged = True
        if diverged:
            raise self._san.mismatch(sig, peers)

    def _san_check_window(self, win, sig: CollectiveCall | None) -> None:
        """Compare the digests every member posted on ``win``'s size
        fence; on mismatch exchange full signatures and raise."""
        if sig is None:
            return
        bad = win.digest_mismatch_ranks(sig.digest)
        if not bad:
            return
        # Every member observes the divergence (each compares all rows
        # against its own digest), so this recovery exchange is entered
        # by the whole group; tag by window round, which members of one
        # round share even if their collective sequence numbers drifted.
        tag = ("sanx", win.name, int(win.seq))
        wire = sig.wire()
        for dst in range(self.size):
            if dst != self._rank:
                self._put_key(self._rank, dst, tag, wire)
        peers = [
            CollectiveCall.from_wire(
                self._transport.get(self._key(src, self._rank, tag))
            )
            for src in range(self.size)
            if src != self._rank
        ]
        raise self._san.mismatch(sig, peers)

    def _make_request(self, op: str, wait_fn: Callable[[], Any]) -> Request:
        """Build a request, registered with the sanitizer when active."""
        if self._san is None:
            return Request(wait_fn)
        return Request(wait_fn, self._san, self._san.track_request(op))

    # -- raw (uncharged) point-to-point -------------------------------------

    def _key(self, src: int, dst: int, tag: Hashable) -> Hashable:
        return (self._comm_id, src, dst, tag)

    def _put_key(self, src: int, dst: int, tag: Hashable, payload: Any) -> None:
        """Deposit for group rank ``dst``, routed by its world rank."""
        self._transport.put(
            self._key(src, dst, tag), payload, dst=self._members[dst]
        )

    def _put_raw(self, dst: int, tag: Hashable, payload: Any) -> None:
        self._put_key(self._rank, dst, tag, payload)

    def _get_raw(self, src: int, tag: Hashable) -> Any:
        return self._transport.get(self._key(src, self._rank, tag))

    # -- charged point-to-point ---------------------------------------------

    def _wire_compress(self, obj: Any) -> Any:
        """Downcast a float64 ring-hop payload for the wire (no-op unless
        ``REPRO_WIRE_COMPRESS`` is on; narrow payloads pass through)."""
        if (
            self._wire32
            and isinstance(obj, np.ndarray)
            and obj.dtype == np.float64
        ):
            return _WireF32(np.asarray(obj, dtype=np.float32))
        return obj

    @staticmethod
    def _wire_expand(obj: Any) -> Any:
        """Upcast a compressed payload back to float64 on arrival."""
        if isinstance(obj, _WireF32):
            return np.asarray(obj.data, dtype=np.float64)
        return obj

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a Python object or array; charges ``alpha + beta W``."""
        self._check_peer(dest, "dest")
        words = _words_of(obj)
        self._ledger.charge_message(
            self._world_rank, words, cc.send_recv_cost(words, self._ledger.machine)
        )
        self._put_raw(dest, ("p2p", tag), self._tx(obj))

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive an object sent by :meth:`send`; charges ``alpha + beta W``."""
        self._check_peer(source, "source")
        obj = self._transport.get(self._key(source, self._rank, ("p2p", tag)))
        words = _words_of(obj)
        self._ledger.charge_message(
            self._world_rank, words, cc.send_recv_cost(words, self._ledger.machine)
        )
        return self._wire_expand(obj)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send with deferred completion.

        The payload is staged into the transport immediately (MPI's eager
        protocol — the receiver can match it before this rank waits), but
        the request only completes at ``wait()``, which is where the
        send's ledger charge lands; a pipelined sender therefore charges
        exactly what a blocking :meth:`send` would.  The payload must not
        be mutated between post and ``wait()``.
        """
        self._check_peer(dest, "dest")
        words = _words_of(obj)
        self._put_raw(dest, ("p2p", tag), self._tx(obj))

        def complete() -> None:
            self._ledger.charge_message(
                self._world_rank,
                words,
                cc.send_recv_cost(words, self._ledger.machine),
            )

        return self._make_request("isend", complete)

    def irecv(self, source: int, tag: int = 0) -> Request:
        """Nonblocking receive; the message is consumed (and the receive
        charged) at ``wait()``."""
        return self._make_request("irecv", lambda: self.recv(source, tag))

    def isendrecv(
        self, obj: Any, dest: int, source: int, tag: int = 0
    ) -> Request:
        """Nonblocking combined exchange — the ring-shift workhorse.

        The send leg is staged immediately so the peer can match it while
        this rank computes; ``wait()`` blocks for the matching receive and
        returns it.  Both legs' charges land at completion and equal
        :meth:`sendrecv`'s exactly (send leg from the sent words, receive
        leg from the received words), so a pipelined ring ledger-matches
        the blocking one.
        """
        self._check_peer(dest, "dest")
        self._check_peer(source, "source")
        obj = self._wire_compress(obj)
        words = _words_of(obj)
        self._put_raw(dest, ("p2p", tag), self._tx(obj))

        def complete() -> Any:
            self._ledger.charge_message(
                self._world_rank,
                words,
                cc.send_recv_cost(words, self._ledger.machine),
            )
            received = self._transport.get(
                self._key(source, self._rank, ("p2p", tag))
            )
            recv_words = _words_of(received)
            self._ledger.charge_message(
                self._world_rank,
                recv_words,
                cc.send_recv_cost(recv_words, self._ledger.machine),
            )
            return self._wire_expand(received)

        return self._make_request("isendrecv", complete)

    def Send(self, array: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer send (mpi4py-style uppercase): NumPy arrays only."""
        if not isinstance(array, np.ndarray):
            raise TypeError("Send requires a numpy.ndarray; use send() for objects")
        self.send(array, dest, tag)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        """Receive into a preallocated buffer; shape/dtype must be compatible."""
        if not isinstance(buf, np.ndarray):
            raise TypeError("Recv requires a preallocated numpy.ndarray buffer")
        data = self.recv(source, tag)
        if not isinstance(data, np.ndarray):
            raise BufferMismatchError(
                f"Recv expected an ndarray message, got {type(data).__name__}"
            )
        if data.dtype != buf.dtype:
            raise BufferMismatchError(
                f"dtype mismatch: message {data.dtype} vs buffer {buf.dtype}"
            )
        if data.size != buf.size:
            raise BufferMismatchError(
                f"size mismatch: message {data.shape} ({data.size} elems) vs "
                f"buffer {buf.shape} ({buf.size} elems)"
            )
        buf.reshape(-1)[:] = data.reshape(-1)

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Simultaneous send+receive (safe against the blocking-order deadlock).

        The send leg is charged from the sent payload, the receive leg
        from the *received* payload — the legs may carry different sizes
        (the receive leg used to be mischarged with the sent size,
        double-charging the send cost when sizes differed).

        Under ``REPRO_WIRE_COMPRESS`` a float64 array payload travels as
        float32 (see :class:`_WireF32`): both legs charge the narrow
        words and the receiver upcasts on arrival.  Lossy — off by
        default, and the bit-identity suites pin it off.
        """
        self._check_peer(dest, "dest")
        self._check_peer(source, "source")
        obj = self._wire_compress(obj)
        words = _words_of(obj)
        self._ledger.charge_message(
            self._world_rank, words, cc.send_recv_cost(words, self._ledger.machine)
        )
        self._put_raw(dest, ("p2p", tag), self._tx(obj))
        received = self._transport.get(self._key(source, self._rank, ("p2p", tag)))
        recv_words = _words_of(received)
        self._ledger.charge_message(
            self._world_rank,
            recv_words,
            cc.send_recv_cost(recv_words, self._ledger.machine),
        )
        return self._wire_expand(received)

    # -- collectives ---------------------------------------------------------

    def _next_coll_tag(self, phase: int = 0) -> Hashable:
        """Reserve a tag for one collective call (same on all ranks by SPMD)."""
        tag = ("coll", self._coll_seq, phase)
        return tag

    def _advance_coll(self) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    def _charge_all(self, seconds: float, words: int = 0, messages: int = 0) -> None:
        """Charge this rank's share of a collective (every member charges once)."""
        if messages:
            self._ledger.charge_message(self._world_rank, words, seconds)
        else:
            self._ledger.charge_time(self._world_rank, seconds)

    def _charge_reduction(self, kind: str, words: int) -> None:
        """The one charge site for the reduction-family collectives.

        Blocking and non-blocking, window and relay, size-1 and grown —
        every path of ``reduce``/``allreduce``/``reduce_scatter_block``
        charges through here, which makes the "non-blocking charges
        exactly what blocking charges" invariant structural instead of
        merely test-enforced.
        """
        machine = self._ledger.machine
        if kind == "reduce":
            cost = cc.reduce_cost(self.size, words, machine)
        elif kind == "allreduce":
            cost = cc.allreduce_cost(self.size, words, machine)
        else:
            cost = cc.reduce_scatter_cost(self.size, words, machine)
        self._charge_all(
            cost, words=words, messages=1 if self.size > 1 else 0
        )

    # -- collective windows --------------------------------------------------
    #
    # On the process transport, the data movement of every collective
    # goes through preallocated per-communicator shared-memory windows
    # (MPI-3 RMA style).  The one-contribution-per-rank collectives
    # (barrier / bcast / gather / allgather / reduce / allreduce /
    # reduce_scatter_block) use a P-slot window: every member writes its
    # contribution into its own slot, a flag fence orders writes before
    # reads, and readers copy directly out of the window.  Scatter rides
    # the same P-slot window with the roles turned around — the root
    # (that round's only writer) fills every member's slot and each
    # member reads its own.  Only alltoall, where every rank writes P-1
    # distinct payloads, needs the P×P pair-slotted window: rank i
    # writes slot (i, j) for destination j and reads column (·, i)
    # after one shared fence.  Either way it is
    # one single-copy exchange instead of relaying O(P) point-to-point
    # messages through rank 0.  Only the *transport* of the bytes
    # changes: the charged ledger costs stay the closed-form tree costs,
    # and results remain bit-identical to the thread backend because
    # contributions are folded in the same group-rank order.

    def _open_window(self, slot_bytes: int, matrix: bool = False):
        """Collectively open a window: group rank 0 creates and publishes
        the segment name and slot size; everyone else attaches.
        Uncharged, like ``split`` — window setup is out of band in the
        paper's model.  The creator's ``slot_bytes`` wins (it is sized
        from rank 0's first payload); a later size fence grows the
        window if another rank's payload does not fit.

        Degrades gracefully under exhaustion: when the creator cannot
        allocate the segment — tmpfs ``ENOSPC``/``ENOMEM``, a
        ``REPRO_SHM_BUDGET`` denial, or an injected ``enospc`` fault at
        the ``window`` site — it publishes a denial sentinel on the same
        name-exchange tag and *every* member returns ``None``, so the
        whole group falls back to the point-to-point relay for that
        collective in lockstep (a later collective simply tries again —
        degradation is per allocation, and the budget may have freed).
        """
        tag = ("win", self._win_gen)
        self._win_gen += 1
        if self._rank == 0:
            try:
                win = self._transport.create_window(
                    self.size, 0, slot_bytes, matrix=matrix
                )
            except OSError as exc:
                if not resources.is_exhaustion(exc):
                    raise
                resources.governor().note_degradation(
                    "window", "p2p", slot_bytes * self.size, str(exc)
                )
                for dst in range(1, self.size):
                    self._put_key(0, dst, tag, ("", 0))
                return None
            for dst in range(1, self.size):
                self._put_key(0, dst, tag, (win.name, win.slot_bytes))
        else:
            name, slot_bytes = self._transport.get(
                self._key(0, self._rank, tag)
            )
            if not name:  # creator's denial sentinel
                return None
            win = self._transport.attach_window(
                name, self.size, self._rank, slot_bytes, matrix=matrix
            )
        return win

    def _grow_window(self, needed: int, matrix: bool = False):
        """Replace a window with one whose slots hold ``needed`` bytes.

        Every member reaches the same growth decision from the shared
        size exchange, so this is collective.  The old window is released
        immediately: all members attached it at creation, so the owner's
        unlink only removes the name.  A denied growth (see
        :meth:`_open_window`) keeps the old window installed and returns
        ``None``; the caller retires the opened round and falls back to
        the point-to-point path.
        """
        slot = self._transport.window_slot(needed)
        new = self._open_window(slot, matrix=matrix)
        if new is None:
            return None
        if matrix:
            old, self._mwin = self._mwin, new
        else:
            old, self._win = self._win, new
        if old is not None:
            self._transport.release_window(old)
        return new

    def _fence_round(self, win, needed: int, words: int, matrix: bool):
        """Open the next exchange on ``win``, growing it until ``needed``
        fits; returns the (possibly replaced) window after the size
        fence, ready to be written, or ``None`` when growth was denied by
        resource exhaustion (the opened round is retired in lockstep —
        nobody wrote a slot yet — and the caller runs point-to-point).
        When the sanitizer is active the current collective's digest
        rides the size fence and is verified before the growth
        decision."""
        sig = self._san_sig if self._san is not None else None
        digest = sig.digest if sig is not None else 0
        while True:
            win.begin()
            largest = win.post_size(needed, words, digest)
            if sig is not None:
                self._san_check_window(win, sig)
            if largest <= win.slot_bytes:
                return win
            grown = self._grow_window(largest, matrix=matrix)
            if grown is None:
                win.commit()
                win.finish()
                return None
            win = grown

    def _window_round(
        self, contribution: Any, contribute: bool = True, words: int = 0
    ):
        """Run the write-and-fence half of one P-slot window exchange.

        Returns the window with this round's data committed (the caller
        reads the slots it needs, then calls ``finish()``), or ``None``
        when the transport has no windows and the point-to-point
        implementation must run instead.  ``words`` rides the size fence
        so every member can charge from sizes it does not hold locally
        (see ``total_words``/``max_words`` on the window).
        """
        if self.size == 1 or not self._transport.windows_enabled:
            return None
        if contribute:
            prefix, payload = pack_collective(contribution)
            needed = packed_nbytes(prefix, payload)
        else:
            prefix, payload, needed = b"", None, 0
        if self._win is None:
            self._win = self._open_window(self._transport.window_slot(needed))
            if self._win is None:
                return None
        win = self._fence_round(self._win, needed, words, matrix=False)
        if win is None:
            return None
        if contribute:
            win.write(prefix, payload)
        win.commit()
        return win

    def _scatter_window_round(self, values, root: int, total_words: int):
        """The root half of a windowed scatter: root writes *every*
        member's slot of the P-slot window (still one writer this round),
        posting its exact total on the size fence; members read their own
        slot in the non-root branch via a contribution-less
        :meth:`_window_round`.  Returns ``None`` when windows are off.
        """
        if not self._transport.windows_enabled:
            return None
        packed = [
            (dst, pack_collective(values[dst]))
            for dst in range(self.size)
            if dst != root
        ]
        needed = max(
            packed_nbytes(prefix, payload) for _, (prefix, payload) in packed
        )
        if self._win is None:
            self._win = self._open_window(self._transport.window_slot(needed))
            if self._win is None:
                return None
        win = self._fence_round(self._win, needed, total_words, matrix=False)
        if win is None:
            return None
        for dst, (prefix, payload) in packed:
            win.write_to(dst, prefix, payload)
        win.commit()
        return win

    def _matrix_round(self, pairs, words: int = 0):
        """Run the write-and-fence half of one P×P pair-window exchange.

        ``pairs`` is this rank's row: ``(dst, obj)`` tuples to deposit.
        The posted size is the largest single pair, so the shared growth
        decision bounds every slot of the matrix.
        """
        if self.size == 1 or not self._transport.windows_enabled:
            return None
        packed = [(dst, pack_collective(obj)) for dst, obj in pairs]
        needed = max(
            (packed_nbytes(prefix, payload) for _, (prefix, payload) in packed),
            default=0,
        )
        if self._mwin is None:
            self._mwin = self._open_window(
                self._transport.window_slot(needed), matrix=True
            )
            if self._mwin is None:
                return None
        win = self._fence_round(self._mwin, needed, words, matrix=True)
        if win is None:
            return None
        for dst, (prefix, payload) in packed:
            win.write_pair(dst, prefix, payload)
        win.commit()
        return win

    def _window_fold(self, win, op: ReduceOp) -> Any:
        """Fold all slots in group-rank order (deterministic, like the
        thread backend's rank-ordered reduction at the root)."""
        acc = win.read(0)
        for src in range(1, self.size):
            acc = op(acc, win.read(src))
        return acc

    def barrier(self) -> None:
        """Synchronize all members; charged as one zero-byte all-reduce."""
        seq = self._advance_coll()
        self._san_enter("barrier", seq)
        if self.size > 1:
            fenced = False
            if self._transport.windows_enabled:
                if self._san is not None:
                    # The plain fence publishes its done flag before
                    # waiting on peers, so a peer may already be posting
                    # the *next* round's digest while we read this one's;
                    # the sanitized barrier therefore runs a full
                    # (contribution-less) window round, whose size fence
                    # orders the digest check correctly.
                    win = self._window_round(None, contribute=False)
                    if win is not None:
                        win.finish()
                        fenced = True
                else:
                    # Zero-byte window fence: one shared rendezvous — no
                    # slot is written, read, or committed (and barriers
                    # never grow the window, so the growth loop is
                    # skipped too).
                    if self._win is None:
                        self._win = self._open_window(
                            self._transport.window_slot(0)
                        )
                    if self._win is not None:
                        self._win.fence()
                        fenced = True
            if not fenced:
                # Point-to-point fallback: fan a token into group rank 0
                # and fan one back out.
                tag_in = ("coll", seq, 0)
                tag_out = ("coll", seq, 1)
                if self._rank == 0:
                    for src in range(1, self.size):
                        self._transport.get(self._key(src, 0, tag_in))
                    for dst in range(1, self.size):
                        self._put_key(0, dst, tag_out, None)
                else:
                    self._put_raw(0, tag_in, None)
                    self._transport.get(self._key(0, self._rank, tag_out))
        self._charge_all(cc.allreduce_cost(self.size, 1, self._ledger.machine))

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to all members."""
        self._check_peer(root, "root")
        seq = self._advance_coll()
        self._san_enter("bcast", seq, root=root, value=obj)
        tag = ("coll", seq, 0)
        if self.size > 1:
            win = self._window_round(obj, contribute=self._rank == root)
            if win is not None:
                result = obj if self._rank == root else win.read(root)
                win.finish()
            elif self._rank == root:
                payload = self._tx(obj)
                for dst in range(self.size):
                    if dst != root:
                        self._put_key(root, dst, tag, payload)
                result = obj
            else:
                result = _copy_payload(
                    self._transport.get(self._key(root, self._rank, tag))
                )
        else:
            result = obj
        words = _words_of(result)
        self._charge_all(
            cc.bcast_cost(self.size, words, self._ledger.machine),
            words=words,
            messages=1 if self.size > 1 else 0,
        )
        return result

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather one value per rank to ``root`` (returns None elsewhere).

        Every member charges the tree cost of the *exact* total gathered
        words — sizes may differ per rank, so the total is shared through
        the window's size fence (or, on the point-to-point path, fanned
        back out by the root uncharged, like ``split``'s setup exchange).
        """
        self._check_peer(root, "root")
        seq = self._advance_coll()
        self._san_enter("gather", seq, root=root, value=value)
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        my_words = _words_of(value)
        out: list[Any] | None = None
        if self.size == 1:
            total_words = my_words
            out = [_copy_payload(value)]
        else:
            win = self._window_round(value, words=my_words)
            if win is not None:
                total_words = win.total_words()
                if self._rank == root:
                    out = [win.read(src) for src in range(self.size)]
                win.finish()
            elif self._rank == root:
                out = [None] * self.size
                out[root] = _copy_payload(value)
                for src in range(self.size):
                    if src != root:
                        out[src] = self._transport.get(
                            self._key(src, root, tag_in)
                        )
                total_words = sum(_words_of(v) for v in out)
                for dst in range(self.size):
                    if dst != root:
                        self._put_key(root, dst, tag_out, total_words)
            else:
                self._put_raw(root, tag_in, self._tx(value))
                total_words = self._transport.get(
                    self._key(root, self._rank, tag_out)
                )
        self._charge_all(
            cc.allgather_cost(self.size, total_words, self._ledger.machine),
            words=total_words,
            messages=1 if self.size > 1 else 0,
        )
        return out

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank onto every rank.

        Charged from the *exact* total gathered words (every rank holds
        the full result, so the total needs no extra exchange), keeping
        the cost identical on all members even when sizes are uneven.
        """
        seq = self._advance_coll()
        self._san_enter("allgather", seq, value=value)
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        if self.size == 1:
            out = [_copy_payload(value)]
        else:
            win = self._window_round(value)
            if win is not None:
                out = [win.read(src) for src in range(self.size)]
                win.finish()
            elif self._rank == 0:
                out = [None] * self.size
                out[0] = _copy_payload(value)
                for src in range(1, self.size):
                    out[src] = self._transport.get(self._key(src, 0, tag_in))
                for dst in range(1, self.size):
                    # Fresh copies per destination: the root may mutate its
                    # own result list before receivers drain their mailboxes.
                    relay = [self._tx(v) for v in out]
                    self._put_key(0, dst, tag_out, relay)
                out = list(out)
            else:
                self._put_raw(0, tag_in, self._tx(value))
                out = self._transport.get(self._key(0, self._rank, tag_out))
        total_words = sum(_words_of(v) for v in out)
        self._charge_all(
            cc.allgather_cost(self.size, total_words, self._ledger.machine),
            words=total_words,
            messages=1 if self.size > 1 else 0,
        )
        return out

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one value per rank from ``root``.

        Every member charges the cost of the root's *exact* total — the
        true ``sum(words)`` rides the window's size fence (or piggybacks
        on each scattered message on the point-to-point path), so uneven
        payloads no longer make non-roots charge a different cost than
        the root.
        """
        self._check_peer(root, "root")
        seq = self._advance_coll()
        self._san_enter("scatter", seq, root=root)
        tag = ("coll", seq, 0)
        if self._rank == root:
            if values is None or len(values) != self.size:
                raise CommunicatorError(
                    f"scatter root needs exactly {self.size} values, got "
                    f"{None if values is None else len(values)}"
                )
            my_value = _copy_payload(values[root])
            total_words = sum(_words_of(v) for v in values)
            if self.size > 1:
                win = self._scatter_window_round(values, root, total_words)
                if win is not None:
                    win.finish()
                else:
                    for dst in range(self.size):
                        if dst != root:
                            self._put_key(
                                root,
                                dst,
                                tag,
                                (self._tx(values[dst]), total_words),
                            )
        else:
            win = self._window_round(None, contribute=False)
            if win is not None:
                # Only the root posted a word count; the fence-shared sum
                # is therefore exactly the root's total.
                total_words = win.total_words()
                my_value = win.read(self._rank)
                win.finish()
            else:
                my_value, total_words = self._transport.get(
                    self._key(root, self._rank, tag)
                )
        self._charge_all(
            cc.bcast_cost(self.size, total_words, self._ledger.machine),
            words=total_words,
            messages=1 if self.size > 1 else 0,
        )
        return my_value

    def reduce(self, value: Any, op: ReduceOp = SUM, root: int = 0) -> Any | None:
        """Reduce values to ``root`` with ``op`` (rank-ordered, deterministic).

        Contributions normally share one shape, but ops that broadcast
        (NumPy ufuncs) tolerate uneven ones, so every member charges from
        the *largest* contribution — shared on the window's size fence,
        or fanned out by the root uncharged on the point-to-point path —
        keeping the charge rank-independent either way.
        """
        self._check_peer(root, "root")
        seq = self._advance_coll()
        self._san_enter("reduce", seq, root=root, reduce_op=op, value=value)
        my_words = _words_of(value)
        acc: Any = None
        if self.size == 1:
            peak_words = my_words
            acc = _copy_payload(value)
        else:
            win = self._window_round(value, words=my_words)
            if win is not None:
                peak_words = win.max_words()
                if self._rank == root:
                    # Only the root folds (in group-rank order, matching
                    # the thread backend); the rest just fence through.
                    acc = self._window_fold(win, op)
                win.finish()
            else:
                # The root never puts its own contribution, so only the
                # senders need the transport-safe copy.
                acc, peak_words = self._reduce_p2p(
                    value if self._rank == root else self._tx(value),
                    op,
                    root,
                    seq,
                )
        self._charge_reduction("reduce", peak_words)
        return acc

    def _reduce_p2p(
        self, value_tx: Any, op: ReduceOp, root: int, seq: int
    ) -> tuple[Any, int]:
        """Point-to-point relay body of :meth:`reduce`: move the bytes,
        fold at the root (group-rank order), fan the peak contribution
        size back out.  Uncharged — callers charge from the returned
        ``(acc_or_None, peak_words)``.  Non-root callers must pass a
        transport-safe ``value_tx`` (pre-copied on by-reference
        transports); the root's contribution is never put, and the fold
        copies before accumulating."""
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        if self._rank == root:
            contributions: list[Any] = [None] * self.size
            contributions[root] = value_tx
            for src in range(self.size):
                if src != root:
                    contributions[src] = self._transport.get(
                        self._key(src, root, tag_in)
                    )
            peak_words = max(_words_of(c) for c in contributions)
            acc = _copy_payload(contributions[0])
            for src in range(1, self.size):
                acc = op(acc, contributions[src])
            for dst in range(self.size):
                if dst != root:
                    self._put_key(root, dst, tag_out, peak_words)
            return acc, peak_words
        self._put_raw(root, tag_in, value_tx)
        return None, self._transport.get(self._key(root, self._rank, tag_out))

    def allreduce(self, value: Any, op: ReduceOp = SUM) -> Any:
        """Reduce-then-broadcast; every rank gets the reduction.

        Charged from the *result's* words (identical on every member by
        construction), so even broadcasting ops with uneven contributions
        charge rank-independent costs.
        """
        seq = self._advance_coll()
        self._san_enter("allreduce", seq, reduce_op=op, value=value)
        if self.size == 1:
            acc = _copy_payload(value)
        else:
            win = self._window_round(value)
            if win is not None:
                # Every rank folds the slots in the same group-rank order
                # the thread backend's root uses, so results stay
                # bit-identical.
                acc = self._window_fold(win, op)
                win.finish()
            else:
                acc = self._allreduce_p2p(
                    value if self._rank == 0 else self._tx(value), op, seq
                )
        words = _words_of(acc)
        self._charge_reduction("allreduce", words)
        return acc

    def _allreduce_p2p(self, value_tx: Any, op: ReduceOp, seq: int) -> Any:
        """Point-to-point relay body of :meth:`allreduce` (fold at group
        rank 0 in rank order, broadcast the result); uncharged."""
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        if self._rank == 0:
            acc = _copy_payload(value_tx)
            received = []
            for src in range(1, self.size):
                received.append(
                    self._transport.get(self._key(src, 0, tag_in))
                )
            for contribution in received:
                acc = op(acc, contribution)
            for dst in range(1, self.size):
                self._put_key(0, dst, tag_out, self._tx(acc))
            return acc
        self._put_raw(0, tag_in, value_tx)
        return self._transport.get(self._key(0, self._rank, tag_out))

    def reduce_scatter_block(
        self, array: np.ndarray, op: ReduceOp = SUM
    ) -> np.ndarray:
        """Reduce an array then scatter equal blocks along axis 0.

        ``array.shape[0]`` must be divisible by the communicator size, and
        every member must pass the *same shape* (the root slices blocks
        by its own shape, so mismatched shapes would mis-scatter — unlike
        ``reduce``, broadcasting contributions are not meaningful here).
        Used by the non-blocked TTM fast path (paper Sec. V-B).
        """
        if not isinstance(array, np.ndarray):
            raise TypeError("reduce_scatter_block requires a numpy.ndarray")
        if array.shape[0] % self.size != 0:
            raise CommunicatorError(
                f"axis 0 of shape {array.shape} not divisible by size {self.size}"
            )
        seq = self._advance_coll()
        self._san_enter(
            "reduce_scatter_block", seq, reduce_op=op, value=array
        )
        block = array.shape[0] // self.size
        # Charge after the exchange, like the other reduction-family
        # collectives: a failed exchange must not leave this rank's
        # ledger ahead of its peers'.
        if self.size == 1:
            out = np.array(array, copy=True)
        else:
            win = self._window_round(array)
            if win is not None:
                acc = self._window_fold(win, op)
                win.finish()
                lo = self._rank * block
                out = np.array(acc[lo : lo + block], copy=True)
            else:
                out = self._reduce_scatter_p2p(
                    array if self._rank == 0 else self._tx(array), op, seq
                )
        self._charge_reduction("reduce_scatter", _words_of(array))
        return out

    def _reduce_scatter_p2p(
        self, array_tx: np.ndarray, op: ReduceOp, seq: int
    ) -> np.ndarray:
        """Point-to-point relay body of :meth:`reduce_scatter_block`
        (fold at group rank 0, scatter equal axis-0 blocks); uncharged."""
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        block = array_tx.shape[0] // self.size
        if self._rank == 0:
            acc = np.array(array_tx, copy=True)
            for src in range(1, self.size):
                acc = op(acc, self._transport.get(self._key(src, 0, tag_in)))
            for dst in range(1, self.size):
                self._put_key(
                    0,
                    dst,
                    tag_out,
                    np.array(acc[dst * block : (dst + 1) * block], copy=True),
                )
            return np.array(acc[:block], copy=True)
        self._put_raw(0, tag_in, array_tx)
        return _copy_payload(
            self._transport.get(self._key(0, self._rank, tag_out))
        )

    # -- non-blocking collectives --------------------------------------------
    #
    # ireduce / iallreduce / ireduce_scatter_block return a Request whose
    # wait() yields exactly what the blocking op returns and charges
    # exactly what the blocking op charges — completion-time charging, so
    # the ledger-symmetry invariants hold however far compute is pipelined
    # between post and wait.
    #
    # On the window transport a post deposits this rank's contribution
    # immediately: it opens the round, publishes the packed size and
    # modeled words, and — when the payload fits the current slot — writes
    # its slot and commit-flags it, all without waiting on any peer.  The
    # fence *waits* (size exchange, write fence) are deferred to the
    # request's wait(): by the time a rank stops computing and waits, the
    # stragglers have usually posted too, so the spins resolve
    # immediately — that deferral is what lets compute overlap the fences.
    # Rounds alternate between two dedicated windows (double buffering,
    # see ``_nb_wins`` in ``__init__``); posting to a buffer whose
    # previous round this rank has not waited force-completes it first.
    # Only the transport of the bytes differs from the blocking path: the
    # fold order (group-rank), the results, and the charges are identical.

    def ireduce(
        self, value: Any, op: ReduceOp = SUM, root: int = 0
    ) -> Request:
        """Nonblocking :meth:`reduce`: ``wait()`` returns the root's
        folded result (``None`` elsewhere) and lands the blocking op's
        exact charge.  A non-root completes as soon as the size fence
        resolves — it never waits on the write fence."""
        self._check_peer(root, "root")
        return self._nb_post(value, op, "reduce", root)

    def iallreduce(self, value: Any, op: ReduceOp = SUM) -> Request:
        """Nonblocking :meth:`allreduce` (deferred fences, charge and
        rank-ordered fold at ``wait()``)."""
        return self._nb_post(value, op, "allreduce", 0)

    def ireduce_scatter_block(
        self, array: np.ndarray, op: ReduceOp = SUM
    ) -> Request:
        """Nonblocking :meth:`reduce_scatter_block` (same validation; this
        rank's block arrives at ``wait()``)."""
        if not isinstance(array, np.ndarray):
            raise TypeError("reduce_scatter_block requires a numpy.ndarray")
        if array.shape[0] % self.size != 0:
            raise CommunicatorError(
                f"axis 0 of shape {array.shape} not divisible by size {self.size}"
            )
        return self._nb_post(array, op, "reduce_scatter", 0)

    def _complete_pending(self, buf: int) -> None:
        """Force-complete this rank's outstanding request on ``buf``.

        Reusing a buffer whose round this rank never waited would spin on
        its own unpublished ``done`` flag; completing the old request
        first (idempotent — a later user ``wait()`` returns the cached
        value) keeps any depth of posted requests deadlock-free."""
        req = self._nb_pending[buf]
        if req is not None:
            req._force()

    def _nb_window(self, buf: int, needed: int):
        win = self._nb_wins[buf]
        if win is None:
            win = self._open_window(self._transport.window_slot(needed))
            self._nb_wins[buf] = win
        return win

    def _grow_nb_window(self, buf: int, needed: int):
        """Non-blocking-round variant of :meth:`_grow_window`."""
        new = self._open_window(self._transport.window_slot(needed))
        old, self._nb_wins[buf] = self._nb_wins[buf], new
        if old is not None:
            self._transport.release_window(old)
        return new

    _NB_OP_NAMES = {
        "reduce": "ireduce",
        "allreduce": "iallreduce",
        "reduce_scatter": "ireduce_scatter_block",
    }

    def _nb_post(self, value: Any, op: ReduceOp, kind: str, root: int) -> Request:
        """Post one non-blocking reduction collective; see the section
        comment for the overlap protocol.  The contribution must not be
        mutated between post and ``wait()`` (MPI's usual rule)."""
        seq = self._advance_coll()
        op_name = self._NB_OP_NAMES[kind]
        self._transport.note_collective(op_name, seq)
        if self._faults is not None:
            self._faults.fire(op_name)
        # Record the signature without exchanging: the post must not
        # block, so verification is deferred — the digest rides this
        # round's size fence (window path) or the full signature is
        # deposited now and peers' signatures are collected at wait()
        # (point-to-point path).
        sig = None
        if self._san is not None:
            sig = self._san.collective(
                op_name,
                seq,
                self._rank,
                root=root if kind == "reduce" else None,
                reduce_op=op,
                value=value,
            )
            self._san_sig = sig
        my_words = _words_of(value)
        if self.size == 1:
            return self._make_request(
                op_name,
                lambda: self._nb_complete_single(kind, value, op, my_words),
            )
        if not self._transport.windows_enabled:
            if sig is not None:
                self._san_put_sigs(sig)
            value_tx = self._tx(value)

            def complete_p2p() -> Any:
                if sig is not None:
                    self._san_collect_sigs(sig)
                return self._nb_complete_p2p(
                    kind, value_tx, op, root, seq, my_words
                )

            return self._make_request(op_name, complete_p2p)
        buf = self._nb_toggle
        self._nb_toggle = 1 - self._nb_toggle
        self._complete_pending(buf)
        prefix, payload = pack_collective(value)
        needed = packed_nbytes(prefix, payload)
        win = self._nb_window(buf, needed)
        if win is None:
            # Window denied by resource exhaustion (collectively — every
            # member saw the sentinel): run this round exactly like a
            # windows-off transport.  The toggle already advanced on all
            # members, so double buffering stays in step.
            if sig is not None:
                self._san_put_sigs(sig)
            value_tx = self._tx(value)
            nb_sig = sig

            def complete_degraded() -> Any:
                if nb_sig is not None:
                    self._san_collect_sigs(nb_sig)
                return self._nb_complete_p2p(
                    kind, value_tx, op, root, seq, my_words
                )

            return self._make_request(op_name, complete_degraded)
        win.begin()
        win.post_size_nowait(
            needed, my_words, sig.digest if sig is not None else 0
        )
        written = needed <= win.slot_bytes
        if written:
            # Optimistic deposit: our slot has no other writer this
            # round, and readers only look after the (deferred) write
            # fence, so writing before the size fence is safe.  If some
            # other rank's payload forces growth the round is replayed
            # on a grown window and these bytes are simply abandoned.
            win.write(prefix, payload)
            win.commit_nowait()
        value_tx = self._tx(value)
        req = self._make_request(
            op_name,
            lambda: self._nb_complete_window(
                buf,
                kind,
                op,
                root,
                my_words,
                prefix,
                payload,
                written,
                sig,
                seq=seq,
                value_tx=value_tx,
            ),
        )
        self._nb_pending[buf] = req
        return req

    def _nb_complete_single(
        self, kind: str, value: Any, op: ReduceOp, my_words: int
    ) -> Any:
        """Size-1 completion: mirror the blocking ops' shortcut charges."""
        if kind == "reduce_scatter":
            self._charge_reduction(kind, my_words)
            return np.array(value, copy=True)
        acc = _copy_payload(value)
        self._charge_reduction(
            kind, my_words if kind == "reduce" else _words_of(acc)
        )
        return acc

    def _nb_complete_p2p(
        self,
        kind: str,
        value_tx: Any,
        op: ReduceOp,
        root: int,
        seq: int,
        my_words: int,
    ) -> Any:
        """Windows-off completion: run the blocking relay body (tags were
        reserved at post time, so interleaved posts stay matched)."""
        if kind == "reduce":
            acc, peak_words = self._reduce_p2p(value_tx, op, root, seq)
            self._charge_reduction(kind, peak_words)
            return acc
        if kind == "allreduce":
            acc = self._allreduce_p2p(value_tx, op, seq)
            self._charge_reduction(kind, _words_of(acc))
            return acc
        out = self._reduce_scatter_p2p(value_tx, op, seq)
        self._charge_reduction(kind, my_words)
        return out

    def _nb_complete_window(
        self,
        buf: int,
        kind: str,
        op: ReduceOp,
        root: int,
        my_words: int,
        prefix: bytes,
        payload: np.ndarray | None,
        written: bool,
        sig: CollectiveCall | None = None,
        seq: int = 0,
        value_tx: Any = None,
    ) -> Any:
        """Window completion: finish the deferred fences, read, charge."""
        self._nb_pending[buf] = None
        win = self._nb_wins[buf]
        largest = win.wait_posted()
        if sig is not None:
            # The deferred size fence has resolved, so every member's
            # digest for this round is visible: verify before reading.
            self._san_check_window(win, sig)
        if largest > win.slot_bytes:
            # Rare growth replay: some rank's payload outgrew the slots.
            # Retire the optimistic round (flags only — nobody reads it)
            # and replay it as one blocking round on a grown window; every
            # member reaches the identical decision from the shared max,
            # so the replacement stays collective.
            if not written:
                win.commit_nowait()
            win.finish()
            win = self._grow_nb_window(buf, largest)
            if win is None:
                # Growth denied by resource exhaustion — collectively, so
                # every member replays the round point-to-point on the
                # tags reserved at post time.  The sanitizer already
                # verified this round's digests on the size fence above.
                return self._nb_complete_p2p(
                    kind, value_tx, op, root, seq, my_words
                )
            win.begin()
            win.post_size(
                packed_nbytes(prefix, payload),
                my_words,
                sig.digest if sig is not None else 0,
            )
            win.write(prefix, payload)
            win.commit()
        acc: Any = None
        if kind != "reduce" or self._rank == root:
            # Only readers pay the write fence; a non-root ireduce
            # completes off the size fence alone (its charge needs the
            # shared peak, nothing else, and window reuse is still gated
            # by the root's own done flag).
            win.wait_written()
            acc = self._window_fold(win, op)
        peak_words = win.max_words()
        win.finish()
        if kind == "reduce":
            self._charge_reduction(kind, peak_words)
            return acc
        if kind == "allreduce":
            self._charge_reduction(kind, _words_of(acc))
            return acc
        self._charge_reduction(kind, my_words)
        block = acc.shape[0] // self.size
        lo = self._rank * block
        return np.array(acc[lo : lo + block], copy=True)

    def alltoall(self, values: Sequence[Any]) -> list[Any]:
        """Exchange ``values[j]`` with rank ``j`` for all j simultaneously.

        Charged from the *heaviest* rank's row total (the bulk-synchronous
        exchange finishes when the busiest rank does), shared through the
        window's size fence or piggybacked on each pairwise message, so
        every member charges the identical cost under uneven rows.
        """
        if len(values) != self.size:
            raise CommunicatorError(
                f"alltoall needs exactly {self.size} values, got {len(values)}"
            )
        seq = self._advance_coll()
        self._san_enter("alltoall", seq)
        tag = ("coll", seq, 0)
        p = self.size
        row_words = sum(_words_of(v) for v in values)
        out: list[Any] = [None] * p
        out[self._rank] = _copy_payload(values[self._rank])
        peak_words = row_words
        if p > 1:
            win = self._matrix_round(
                [(dst, values[dst]) for dst in range(p) if dst != self._rank],
                words=row_words,
            )
            if win is not None:
                peak_words = win.max_words()
                for src in range(p):
                    if src != self._rank:
                        out[src] = win.read_pair(src)
                win.finish()
            else:
                for dst in range(p):
                    if dst != self._rank:
                        self._put_key(
                            self._rank,
                            dst,
                            tag,
                            (self._tx(values[dst]), row_words),
                        )
                for src in range(p):
                    if src != self._rank:
                        out[src], src_words = self._transport.get(
                            self._key(src, self._rank, tag)
                        )
                        peak_words = max(peak_words, src_words)
        # Pairwise-exchange cost: (P-1) messages of ceil(W/P) words each.
        cost = (p - 1) * cc.send_recv_cost(
            -(-peak_words // p) if p > 1 else 0, self._ledger.machine
        )
        self._charge_all(cost, words=peak_words, messages=1 if p > 1 else 0)
        return out

    # -- communicator construction -------------------------------------------

    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition the communicator by ``color``; order new ranks by ``key``.

        Ranks passing ``color=None`` (MPI's ``MPI_UNDEFINED``) receive ``None``.
        """
        seq = self._advance_coll()
        # Split always relays point-to-point (never through windows), so
        # its signature exchange is forced onto the point-to-point path.
        self._san_enter("split", seq, windowed=False)
        # Exchange (color, key, rank) without charging: communicator setup is
        # out of band in the paper's model.
        tag_in = ("coll", seq, 0)
        tag_out = ("coll", seq, 1)
        triple = (color, self._rank if key is None else key, self._rank)
        if self.size == 1:
            triples = [triple]
        elif self._rank == 0:
            triples = [triple] + [
                self._transport.get(self._key(src, 0, tag_in))
                for src in range(1, self.size)
            ]
            triples.sort(key=lambda t: t[2])
            for dst in range(1, self.size):
                self._put_key(0, dst, tag_out, triples)
        else:
            self._put_raw(0, tag_in, triple)
            triples = self._transport.get(self._key(0, self._rank, tag_out))
        if color is None:
            return None
        group = sorted(
            (t for t in triples if t[0] == color),
            key=lambda t: (t[1], t[2]),
        )
        members = tuple(self._members[t[2]] for t in group)
        child_id = (self._comm_id, seq, color)
        return Communicator(
            self._transport,
            self._ledger,
            child_id,
            members,
            self._world_rank,
            sanitizer=self._san,
            faults=self._faults,
        )

    def dup(self) -> "Communicator":
        """Duplicate the communicator with a fresh tag space."""
        child = self.split(color=0, key=self._rank)
        assert child is not None
        return child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(id={self._comm_id!r}, rank={self._rank}/{self.size})"
        )
