"""Simulated distributed-memory message-passing runtime.

This package replaces MPI for the reproduction: ranks execute under a
pluggable executor backend — threads sharing an in-process transport, or
OS processes exchanging ndarrays through POSIX shared memory — and
every operation charges an alpha-beta-gamma cost ledger so that modeled
runtimes of real executions can be reported (see DESIGN.md, substitution
table).

The process backend has a shared-memory fast path: a persistent rank
pool amortizes launch cost across ``run_spmd`` calls (see
:mod:`repro.mpi.backends`), a segment arena recycles shm segments and
hands receivers read-only zero-copy :class:`ShmArrayView`\\ s, and
per-communicator collective windows turn every collective — including
``barrier``, ``gather``, ``scatter``, ``reduce`` and ``alltoall`` — into
one barrier-fenced single-copy exchange (see
:mod:`repro.mpi.process_transport`).

Public surface:

* :func:`run_spmd` — launch an SPMD function on N ranks.
* :class:`Communicator` — mpi4py-flavoured point-to-point + collectives.
* :class:`CartGrid` — N-way Cartesian processor grids with mode row/column
  sub-communicators (paper Sec. IV).
* :data:`SUM`/:data:`MAX`/:data:`MIN`/:data:`PROD` — reduction operators.
* :class:`CostLedger` — per-rank modeled time / flops / words accounting.
* :class:`ThreadBackend` / :class:`ProcessBackend` — executor backends,
  selectable per call (``run_spmd(..., backend="process")``) or via the
  ``REPRO_SPMD_BACKEND`` environment variable.
"""

from repro.mpi.comm import Communicator, Request
from repro.mpi.cart import CartGrid
from repro.mpi.backends import (
    BACKEND_ENV_VAR,
    POOL_ENV_VAR,
    ExecutorBackend,
    ProcessBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
    shutdown_worker_pools,
)
from repro.mpi.executor import (
    TIMEOUT_ENV_VAR,
    SpmdResult,
    resolve_timeout,
    run_spmd,
)
from repro.faults import (
    FAULTS_ENV_VAR,
    FaultSpec,
    RetryPolicy,
    resolve_faults,
)
from repro.mpi.ledger import CostLedger, RankCosts
from repro.mpi.process_transport import (
    ARENA_ENV_VAR,
    WINDOWS_ENV_VAR,
    WINDOW_SLOT_ENV_VAR,
    CollectiveWindow,
    MatrixWindow,
    ProcessTransport,
    SegmentArena,
    ShmArrayView,
    process_arena,
    release_view,
)
from repro.mpi.reduce_ops import MAX, MIN, PROD, SUM, ReduceOp
from repro.mpi.transport import ThreadTransport, Transport, TransportBase
from repro.analysis.sanitizer import SANITIZE_ENV_VAR, Sanitizer
from repro.resources import (
    BudgetExceededError,
    DegradationEvent,
    ResourceReport,
    estimate_world_shm,
)
from repro.mpi.errors import (
    AdmissionError,
    BufferMismatchError,
    CollectiveMismatchError,
    CommunicatorError,
    DeadlineExceededError,
    DeadlockError,
    FaultInjectedError,
    MpiError,
    RankDeadError,
    RequestLeakError,
    RequestStateError,
    SanitizerError,
    SpmdError,
    WindowProtocolError,
)

__all__ = [
    "Communicator",
    "Request",
    "CartGrid",
    "SpmdResult",
    "run_spmd",
    "CostLedger",
    "RankCosts",
    "ReduceOp",
    "SUM",
    "MAX",
    "MIN",
    "PROD",
    "Transport",
    "TransportBase",
    "ThreadTransport",
    "ProcessTransport",
    "SegmentArena",
    "ShmArrayView",
    "CollectiveWindow",
    "MatrixWindow",
    "process_arena",
    "release_view",
    "ExecutorBackend",
    "ThreadBackend",
    "ProcessBackend",
    "available_backends",
    "resolve_backend",
    "shutdown_worker_pools",
    "BACKEND_ENV_VAR",
    "POOL_ENV_VAR",
    "ARENA_ENV_VAR",
    "WINDOWS_ENV_VAR",
    "WINDOW_SLOT_ENV_VAR",
    "SANITIZE_ENV_VAR",
    "FAULTS_ENV_VAR",
    "TIMEOUT_ENV_VAR",
    "FaultSpec",
    "RetryPolicy",
    "resolve_faults",
    "resolve_timeout",
    "Sanitizer",
    "ResourceReport",
    "DegradationEvent",
    "estimate_world_shm",
    "MpiError",
    "DeadlockError",
    "DeadlineExceededError",
    "AdmissionError",
    "BudgetExceededError",
    "RankDeadError",
    "FaultInjectedError",
    "BufferMismatchError",
    "CommunicatorError",
    "SpmdError",
    "SanitizerError",
    "CollectiveMismatchError",
    "RequestLeakError",
    "RequestStateError",
    "WindowProtocolError",
]
