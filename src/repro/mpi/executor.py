"""SPMD executor: run one function on N simulated MPI ranks.

The actual execution strategy lives in a pluggable backend
(:mod:`repro.mpi.backends`): ``"thread"`` runs ranks as threads sharing an
in-process transport, ``"process"`` runs one OS process per rank —
dispatched to a persistent warm rank pool when the rank function is
picklable, forked per run otherwise — and moves ndarray payloads through
pooled POSIX shared-memory segments, so rank code runs genuinely in
parallel on multi-core hardware and short benchmark runs are not
dominated by launch overhead.

Whatever the backend, if any rank raises, the transport is poisoned so
sibling ranks blocked on receives fail fast, and the whole run raises
:class:`~repro.mpi.errors.SpmdError` carrying every rank's exception.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.analysis.sanitizer import sanitize_level
from repro.mpi.backends import (
    ExecutorBackend,
    SpmdResult,
    available_backends,
    resolve_backend,
)
from repro.perfmodel.machine import EDISON, MachineSpec

__all__ = ["SpmdResult", "run_spmd", "available_backends"]


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineSpec = EDISON,
    timeout: float = 120.0,
    rank_args: Sequence[tuple] | None = None,
    backend: str | ExecutorBackend | None = None,
    sanitize: int | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks to launch.
    fn:
        The SPMD program.  Receives a world :class:`Communicator` as its
        first argument, then ``args`` (identical on every rank) and, if
        ``rank_args`` is given, that rank's extra tuple appended.
    machine:
        Machine constants used by the cost ledger (default: Edison core).
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
    rank_args:
        Optional per-rank argument tuples, e.g. per-rank data blocks.
    backend:
        Executor backend: a name (``"thread"``, ``"process"``), a
        :class:`~repro.mpi.backends.ExecutorBackend` instance, or ``None``
        to consult the ``REPRO_SPMD_BACKEND`` environment variable
        (default ``"thread"``).  The process backend requires per-rank
        return values to be picklable.
    sanitize:
        SPMD sanitizer level (:mod:`repro.analysis.sanitizer`): ``0``
        off, ``1`` collective-protocol + request-lifetime checks, ``2``
        adds shared-memory window generation checks.  ``None`` (default)
        consults the ``REPRO_SANITIZE`` environment variable.  The level
        is resolved here, in the launching process, and rides the run
        dispatch — warm pool workers need no environment change.

    Returns
    -------
    SpmdResult
        Per-rank return values (rank order) and the run's cost ledger.

    Raises
    ------
    SpmdError
        If any rank raised; carries all per-rank exceptions.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError(
            f"rank_args has {len(rank_args)} entries for {n_ranks} ranks"
        )
    executor = resolve_backend(backend)
    return executor.run(
        n_ranks,
        fn,
        args,
        machine,
        timeout,
        rank_args,
        sanitize=sanitize_level(sanitize),
    )
