"""SPMD executor: run one function on N simulated MPI ranks.

The actual execution strategy lives in a pluggable backend
(:mod:`repro.mpi.backends`): ``"thread"`` runs ranks as threads sharing an
in-process transport, ``"process"`` runs one OS process per rank —
dispatched to a persistent warm rank pool when the rank function is
picklable, forked per run otherwise — and moves ndarray payloads through
pooled POSIX shared-memory segments, so rank code runs genuinely in
parallel on multi-core hardware and short benchmark runs are not
dominated by launch overhead.

Whatever the backend, if any rank raises, the transport is poisoned so
sibling ranks blocked on receives fail fast, and the whole run raises
:class:`~repro.mpi.errors.SpmdError` carrying every rank's exception.

Fault tolerance rides here too: ``faults=`` (or ``REPRO_FAULTS``)
injects deterministic failures for chaos testing, and ``retry=`` wraps
the launch in a bounded exponential-backoff loop — a rank death
(:class:`~repro.mpi.errors.RankDeadError`) triggers a clean relaunch
instead of surfacing immediately.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro import resources
from repro.config import (
    RuntimeConfig,
    default_for,
    resolve_config,
    set_active_config,
)
from repro.faults import FaultSpec, RetryPolicy, resolve_faults
from repro.mpi.backends import (
    ExecutorBackend,
    SpmdResult,
    available_backends,
    backend_from_config,
)
from repro.mpi.errors import SpmdError
from repro.perfmodel.machine import EDISON, MachineSpec

__all__ = [
    "SpmdResult",
    "run_spmd",
    "available_backends",
    "resolve_timeout",
    "TIMEOUT_ENV_VAR",
    "DEFAULT_TIMEOUT",
]

#: Environment override for the deadlock-detection timeout (seconds);
#: an explicit ``run_spmd(timeout=)`` / ``--timeout`` wins over it.
TIMEOUT_ENV_VAR = "REPRO_SPMD_TIMEOUT"

DEFAULT_TIMEOUT = 120.0


def resolve_timeout(override: float | None = None) -> float:
    """Effective deadlock timeout: explicit override > config/env > default."""
    if override is None:
        return float(default_for("timeout"))
    if override <= 0:
        raise ValueError(f"timeout must be positive, got {override}")
    return float(override)


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineSpec = EDISON,
    timeout: float | None = None,
    rank_args: Sequence[tuple] | None = None,
    backend: str | ExecutorBackend | None = None,
    sanitize: int | None = None,
    faults: FaultSpec | str | None = None,
    retry: RetryPolicy | None = None,
    config: RuntimeConfig | None = None,
    deadline: float | None = None,
    shm_estimate: int | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks to launch.
    fn:
        The SPMD program.  Receives a world :class:`Communicator` as its
        first argument, then ``args`` (identical on every rank) and, if
        ``rank_args`` is given, that rank's extra tuple appended.
    machine:
        Machine constants used by the cost ledger (default: Edison core).
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
        ``None`` (default) consults ``REPRO_SPMD_TIMEOUT``, falling back
        to 120 s.
    rank_args:
        Optional per-rank argument tuples, e.g. per-rank data blocks.
    backend:
        Executor backend: a name (``"thread"``, ``"process"``), a
        :class:`~repro.mpi.backends.ExecutorBackend` instance, or ``None``
        to consult the ``REPRO_SPMD_BACKEND`` environment variable
        (default ``"thread"``).  The process backend requires per-rank
        return values to be picklable.
    sanitize:
        SPMD sanitizer level (:mod:`repro.analysis.sanitizer`): ``0``
        off, ``1`` collective-protocol + request-lifetime checks, ``2``
        adds shared-memory window generation checks.  ``None`` (default)
        consults the ``REPRO_SANITIZE`` environment variable.  The level
        is resolved here, in the launching process, and rides the run
        dispatch — warm pool workers need no environment change.
    faults:
        Deterministic fault-injection spec (:class:`repro.faults.FaultSpec`
        or its string grammar, e.g. ``"rank=1:site=allreduce:kind=crash"``).
        ``None`` (default) consults ``REPRO_FAULTS``.  Resolved here and
        carried by the run dispatch, like ``sanitize``.
    retry:
        Optional :class:`repro.faults.RetryPolicy`: relaunch the whole
        SPMD section (with exponential backoff) when it fails with a
        retryable error — by default a rank death.  Fault clauses apply
        to attempt 1 only unless they say ``attempt=``, so an injected
        crash is not re-injected on the retry.  ``None`` consults the
        resolved config's ``retry`` count (``REPRO_SPMD_RETRY``).
    config:
        A complete :class:`repro.config.RuntimeConfig` describing every
        runtime knob (backend, pool, windows, overlap, ...).  Explicit
        keywords above win over it; unspecified knobs fall back to the
        environment, then to the defaults.  The resolved config is
        installed for the duration of the run (and shipped to pooled
        workers), so mid-library helpers see exactly one consistent
        configuration per run.
    deadline:
        Cooperative wall-clock deadline for the whole run, in seconds
        (``None`` consults ``REPRO_DEADLINE``; ``0`` = no deadline).
        The budget starts counting *before* the first attempt and is
        shared across retries: ranks check it at fences, blocking
        receives and checkpoint steps, and every rank raises
        :class:`~repro.mpi.errors.DeadlineExceededError` — naming the
        operation it was in — within seconds of expiry, with
        ``/dev/shm`` left clean.
    shm_estimate:
        Optional up-front shared-memory footprint estimate (bytes) for
        admission control, for drivers that can model their launch
        better than the default
        :func:`repro.resources.estimate_world_shm` geometry.  With
        ``REPRO_SHM_BUDGET`` / ``REPRO_MAX_WORLDS`` configured,
        over-budget launches wait briefly for running worlds to finish
        (idle warm pools are recycled LRU-first), then raise
        :class:`~repro.mpi.errors.AdmissionError`; the sole world is
        always admitted and degrades per allocation instead.

    Returns
    -------
    SpmdResult
        Per-rank return values (rank order) and the run's cost ledger.

    Raises
    ------
    SpmdError
        If any rank raised; carries all per-rank exceptions.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError(
            f"rank_args has {len(rank_args)} entries for {n_ranks} ranks"
        )
    # Resolve every knob ONCE, here at the boundary: explicit keyword >
    # explicit config > environment > default.  Everything downstream
    # receives the resolved config, never the environment.
    cfg = resolve_config(
        config,
        backend=backend if isinstance(backend, str) else None,
        sanitize=sanitize,
        faults=faults if isinstance(faults, str) else None,
        timeout=resolve_timeout(timeout) if timeout is not None else None,
        deadline=deadline,
    )
    if faults is None or isinstance(faults, str):
        spec = FaultSpec.parse(cfg.faults) if cfg.faults else None
    else:
        spec = resolve_faults(faults)  # FaultSpec passthrough / TypeError
    if retry is None and cfg.retry > 1:
        retry = RetryPolicy(max_attempts=cfg.retry)
    if isinstance(backend, ExecutorBackend):
        executor = backend
    else:
        executor = backend_from_config(cfg)
    # Admission control: one gate per launch, before any rank starts.
    # The footprint estimate is reconciled against actual allocations by
    # the controller's registered usage sources; AdmissionError (after a
    # bounded wait) is raised here, never mid-run.
    estimate = (
        int(shm_estimate)
        if shm_estimate is not None
        else resources.estimate_world_shm(n_ranks, cfg)
    )
    controller = resources.admission_controller()
    ticket, admission_wait = controller.admit(n_ranks, estimate, cfg)
    # The deadline is an *absolute* timestamp fixed before attempt 1, so
    # a retried attempt inherits only the remaining budget.
    deadline_info = (
        (time.monotonic() + cfg.deadline, cfg.deadline)
        if cfg.deadline > 0
        else None
    )
    previous = set_active_config(cfg)
    previous_deadline = resources.set_active_deadline(deadline_info)
    try:
        attempt = 1
        while True:
            try:
                result = executor.run(
                    n_ranks,
                    fn,
                    args,
                    machine,
                    cfg.timeout,
                    rank_args,
                    sanitize=cfg.sanitize,
                    faults=spec,
                    attempt=attempt,
                    config=cfg,
                )
                if result.resources is not None:
                    result.resources.admission_wait = admission_wait
                    result.resources.estimate_bytes = estimate
                    result.resources.budget_bytes = cfg.shm_budget
                return result
            except SpmdError as exc:
                if retry is None or not retry.should_retry(exc, attempt):
                    raise
                resources.check_deadline(
                    f"retry backoff before attempt {attempt + 1}"
                )
                time.sleep(retry.delay(attempt))
                attempt += 1
    finally:
        resources.set_active_deadline(previous_deadline)
        set_active_config(previous)
        controller.release(ticket)
