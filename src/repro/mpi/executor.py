"""SPMD executor: run one function on N simulated MPI ranks.

Each rank runs in its own Python thread against a shared
:class:`~repro.mpi.transport.Transport` and
:class:`~repro.mpi.ledger.CostLedger`.  NumPy releases the GIL inside BLAS,
so local linear algebra on different ranks genuinely overlaps; everything
else is interleaved by the GIL, which is fine because correctness never
depends on timing (all synchronization is explicit message passing).

If any rank raises, the transport is poisoned so sibling ranks blocked on
receives fail fast, and the whole run raises
:class:`~repro.mpi.errors.SpmdError` carrying every rank's exception.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mpi.comm import Communicator
from repro.mpi.errors import DeadlockError, SpmdError
from repro.mpi.ledger import CostLedger
from repro.mpi.transport import Transport
from repro.perfmodel.machine import EDISON, MachineSpec


@dataclass
class SpmdResult:
    """Return values of all ranks plus the run's cost ledger."""

    values: list[Any]
    ledger: CostLedger

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def modeled_time(self) -> float:
        return self.ledger.modeled_time()


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineSpec = EDISON,
    timeout: float = 120.0,
    rank_args: Sequence[tuple] | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks (threads) to launch.
    fn:
        The SPMD program.  Receives a world :class:`Communicator` as its
        first argument, then ``args`` (identical on every rank) and, if
        ``rank_args`` is given, that rank's extra tuple appended.
    machine:
        Machine constants used by the cost ledger (default: Edison core).
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
    rank_args:
        Optional per-rank argument tuples, e.g. per-rank data blocks.

    Returns
    -------
    SpmdResult
        Per-rank return values (rank order) and the shared cost ledger.

    Raises
    ------
    SpmdError
        If any rank raised; carries all per-rank exceptions.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError(
            f"rank_args has {len(rank_args)} entries for {n_ranks} ranks"
        )
    transport = Transport(timeout=timeout)
    ledger = CostLedger(n_ranks, machine)
    values: list[Any] = [None] * n_ranks
    failures: dict[int, BaseException] = {}
    failures_lock = threading.Lock()

    def worker(rank: int) -> None:
        comm = Communicator(transport, ledger, "world", tuple(range(n_ranks)), rank)
        try:
            extra = rank_args[rank] if rank_args is not None else ()
            values[rank] = fn(comm, *args, *extra)
        except BaseException as exc:  # noqa: BLE001 - reraised via SpmdError
            with failures_lock:
                failures[rank] = exc
            transport.abort(exc)

    threads = [
        threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
        for rank in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if failures:
        # Deadlock cascades: report only the original failures, not the
        # DeadlockErrors induced on innocent ranks by the abort.
        primary = {
            rank: exc
            for rank, exc in failures.items()
            if not isinstance(exc, DeadlockError)
        }
        raise SpmdError(primary or failures)
    return SpmdResult(values=values, ledger=ledger)
