"""SPMD executor: run one function on N simulated MPI ranks.

The actual execution strategy lives in a pluggable backend
(:mod:`repro.mpi.backends`): ``"thread"`` runs ranks as threads sharing an
in-process transport, ``"process"`` runs one OS process per rank —
dispatched to a persistent warm rank pool when the rank function is
picklable, forked per run otherwise — and moves ndarray payloads through
pooled POSIX shared-memory segments, so rank code runs genuinely in
parallel on multi-core hardware and short benchmark runs are not
dominated by launch overhead.

Whatever the backend, if any rank raises, the transport is poisoned so
sibling ranks blocked on receives fail fast, and the whole run raises
:class:`~repro.mpi.errors.SpmdError` carrying every rank's exception.

Fault tolerance rides here too: ``faults=`` (or ``REPRO_FAULTS``)
injects deterministic failures for chaos testing, and ``retry=`` wraps
the launch in a bounded exponential-backoff loop — a rank death
(:class:`~repro.mpi.errors.RankDeadError`) triggers a clean relaunch
instead of surfacing immediately.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Sequence

from repro.analysis.sanitizer import sanitize_level
from repro.faults import FaultSpec, RetryPolicy, resolve_faults
from repro.mpi.backends import (
    ExecutorBackend,
    SpmdResult,
    available_backends,
    resolve_backend,
)
from repro.mpi.errors import SpmdError
from repro.perfmodel.machine import EDISON, MachineSpec

__all__ = [
    "SpmdResult",
    "run_spmd",
    "available_backends",
    "resolve_timeout",
    "TIMEOUT_ENV_VAR",
    "DEFAULT_TIMEOUT",
]

#: Environment override for the deadlock-detection timeout (seconds);
#: an explicit ``run_spmd(timeout=)`` / ``--timeout`` wins over it.
TIMEOUT_ENV_VAR = "REPRO_SPMD_TIMEOUT"

DEFAULT_TIMEOUT = 120.0


def resolve_timeout(override: float | None = None) -> float:
    """Effective deadlock timeout: explicit override > env > default."""
    if override is None:
        raw = os.environ.get(TIMEOUT_ENV_VAR, "").strip()
        if not raw:
            return DEFAULT_TIMEOUT
        try:
            override = float(raw)
        except ValueError:
            raise ValueError(
                f"{TIMEOUT_ENV_VAR} must be a number of seconds, got {raw!r}"
            ) from None
    if override <= 0:
        raise ValueError(f"timeout must be positive, got {override}")
    return float(override)


def run_spmd(
    n_ranks: int,
    fn: Callable[..., Any],
    *args: Any,
    machine: MachineSpec = EDISON,
    timeout: float | None = None,
    rank_args: Sequence[tuple] | None = None,
    backend: str | ExecutorBackend | None = None,
    sanitize: int | None = None,
    faults: FaultSpec | str | None = None,
    retry: RetryPolicy | None = None,
) -> SpmdResult:
    """Execute ``fn(comm, *args)`` on ``n_ranks`` simulated MPI ranks.

    Parameters
    ----------
    n_ranks:
        Number of ranks to launch.
    fn:
        The SPMD program.  Receives a world :class:`Communicator` as its
        first argument, then ``args`` (identical on every rank) and, if
        ``rank_args`` is given, that rank's extra tuple appended.
    machine:
        Machine constants used by the cost ledger (default: Edison core).
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
        ``None`` (default) consults ``REPRO_SPMD_TIMEOUT``, falling back
        to 120 s.
    rank_args:
        Optional per-rank argument tuples, e.g. per-rank data blocks.
    backend:
        Executor backend: a name (``"thread"``, ``"process"``), a
        :class:`~repro.mpi.backends.ExecutorBackend` instance, or ``None``
        to consult the ``REPRO_SPMD_BACKEND`` environment variable
        (default ``"thread"``).  The process backend requires per-rank
        return values to be picklable.
    sanitize:
        SPMD sanitizer level (:mod:`repro.analysis.sanitizer`): ``0``
        off, ``1`` collective-protocol + request-lifetime checks, ``2``
        adds shared-memory window generation checks.  ``None`` (default)
        consults the ``REPRO_SANITIZE`` environment variable.  The level
        is resolved here, in the launching process, and rides the run
        dispatch — warm pool workers need no environment change.
    faults:
        Deterministic fault-injection spec (:class:`repro.faults.FaultSpec`
        or its string grammar, e.g. ``"rank=1:site=allreduce:kind=crash"``).
        ``None`` (default) consults ``REPRO_FAULTS``.  Resolved here and
        carried by the run dispatch, like ``sanitize``.
    retry:
        Optional :class:`repro.faults.RetryPolicy`: relaunch the whole
        SPMD section (with exponential backoff) when it fails with a
        retryable error — by default a rank death.  Fault clauses apply
        to attempt 1 only unless they say ``attempt=``, so an injected
        crash is not re-injected on the retry.

    Returns
    -------
    SpmdResult
        Per-rank return values (rank order) and the run's cost ledger.

    Raises
    ------
    SpmdError
        If any rank raised; carries all per-rank exceptions.
    """
    if n_ranks <= 0:
        raise ValueError(f"n_ranks must be positive, got {n_ranks}")
    if rank_args is not None and len(rank_args) != n_ranks:
        raise ValueError(
            f"rank_args has {len(rank_args)} entries for {n_ranks} ranks"
        )
    timeout = resolve_timeout(timeout)
    spec = resolve_faults(faults)
    level = sanitize_level(sanitize)
    executor = resolve_backend(backend)
    attempt = 1
    while True:
        try:
            return executor.run(
                n_ranks,
                fn,
                args,
                machine,
                timeout,
                rank_args,
                sanitize=level,
                faults=spec,
                attempt=attempt,
            )
        except SpmdError as exc:
            if retry is None or not retry.should_retry(exc, attempt):
                raise
            time.sleep(retry.delay(attempt))
            attempt += 1
