"""Per-rank cost ledger for the simulated MPI runtime.

Every communication call and every locally executed kernel *charges* the
ledger: collectives per the Table I formulas, local compute as
``gamma * flops``.  The ledger also keeps raw counters (messages, words,
flops) so the analytic performance model can be validated against actual
traffic, independent of the machine constants.

Charges are attributed to a *section* label (e.g. ``"gram"``, ``"ttm"``,
``"evecs"``) so benchmarks can reproduce the paper's per-kernel runtime
breakdowns (Fig. 8).  Sections nest; charges go to the innermost label.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.perfmodel.machine import MachineSpec


@dataclass
class RankCosts:
    """Mutable accumulator of one rank's modeled costs."""

    time: float = 0.0
    flops: int = 0
    words_sent: int = 0
    messages: int = 0
    peak_memory_words: int = 0
    by_section: dict[str, float] = field(default_factory=lambda: defaultdict(float))


class CostLedger:
    """Thread-safe modeled-cost accounting for one SPMD execution.

    One ledger is shared by all ranks of a run; each rank charges its own
    :class:`RankCosts` row.  ``modeled_time`` is the bulk-synchronous
    estimate: the maximum accumulated time over ranks.
    """

    DEFAULT_SECTION = "other"

    def __init__(self, n_ranks: int, machine: MachineSpec):
        if n_ranks <= 0:
            raise ValueError(f"n_ranks must be positive, got {n_ranks}")
        self.machine = machine
        self._ranks = [RankCosts() for _ in range(n_ranks)]
        self._lock = threading.Lock()
        self._section = threading.local()

    # -- section labelling ------------------------------------------------

    def current_section(self) -> str:
        stack = getattr(self._section, "stack", None)
        return stack[-1] if stack else self.DEFAULT_SECTION

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        """Attribute charges made inside the ``with`` block to ``label``."""
        stack = getattr(self._section, "stack", None)
        if stack is None:
            stack = []
            self._section.stack = stack
        stack.append(label)
        try:
            yield
        finally:
            stack.pop()

    # -- charging ----------------------------------------------------------

    def charge_time(self, rank: int, seconds: float) -> None:
        """Charge raw modeled seconds to one rank under the current section."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        row = self._ranks[rank]
        label = self.current_section()
        with self._lock:
            row.time += seconds
            row.by_section[label] += seconds

    def charge_flops(self, rank: int, flops: int) -> None:
        """Charge ``flops`` local operations (time = gamma * flops)."""
        if flops < 0:
            raise ValueError(f"cannot charge negative flops: {flops}")
        row = self._ranks[rank]
        label = self.current_section()
        seconds = self.machine.gamma * flops
        with self._lock:
            row.flops += flops
            row.time += seconds
            row.by_section[label] += seconds

    def charge_message(self, rank: int, words: int, seconds: float) -> None:
        """Charge one message of ``words`` words with modeled cost ``seconds``."""
        row = self._ranks[rank]
        label = self.current_section()
        with self._lock:
            row.messages += 1
            row.words_sent += words
            row.time += seconds
            row.by_section[label] += seconds

    def note_memory(self, rank: int, words: int) -> None:
        """Record a memory high-water mark (in words) for one rank."""
        row = self._ranks[rank]
        with self._lock:
            row.peak_memory_words = max(row.peak_memory_words, words)

    def install_rank(self, rank: int, costs: RankCosts) -> None:
        """Replace one rank's cost row wholesale.

        The process executor backend runs each rank against its own child
        ledger and ships the rank's :class:`RankCosts` back to the parent,
        which installs the rows into the result ledger here.
        """
        if not 0 <= rank < len(self._ranks):
            raise ValueError(
                f"rank {rank} out of range for ledger of {len(self._ranks)}"
            )
        with self._lock:
            self._ranks[rank] = costs

    # -- reporting ----------------------------------------------------------

    @property
    def n_ranks(self) -> int:
        return len(self._ranks)

    def rank_costs(self, rank: int) -> RankCosts:
        return self._ranks[rank]

    def modeled_time(self) -> float:
        """Bulk-synchronous runtime estimate: max accumulated time over ranks."""
        with self._lock:
            return max(row.time for row in self._ranks)

    def total_flops(self) -> int:
        with self._lock:
            return sum(row.flops for row in self._ranks)

    def total_words(self) -> int:
        with self._lock:
            return sum(row.words_sent for row in self._ranks)

    def total_messages(self) -> int:
        with self._lock:
            return sum(row.messages for row in self._ranks)

    def section_times(self) -> dict[str, float]:
        """Max-over-ranks modeled time per section label.

        The per-section maxima are what the paper's stacked runtime-breakdown
        bars report (each kernel is a bulk-synchronous phase).
        """
        labels: set[str] = set()
        with self._lock:
            for row in self._ranks:
                labels.update(row.by_section)
            return {
                label: max(row.by_section.get(label, 0.0) for row in self._ranks)
                for label in sorted(labels)
            }

    def summary(self) -> dict[str, float | int]:
        """Aggregate counters, handy for quick reports and tests."""
        return {
            "modeled_time": self.modeled_time(),
            "total_flops": self.total_flops(),
            "total_words": self.total_words(),
            "total_messages": self.total_messages(),
        }
