"""In-process message transport for the simulated MPI runtime.

Messages are delivered through per-(communicator, source, destination, tag)
mailboxes guarded by a single condition variable.  Delivery is FIFO per
mailbox, which matches MPI's non-overtaking guarantee for messages sent on
the same (source, destination, tag, communicator) tuple.

Blocking receives time out after ``timeout`` seconds and raise
:class:`~repro.mpi.errors.DeadlockError`; an SPMD program that deadlocks in
real MPI hangs forever, but a test suite should fail fast instead.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Hashable

from repro.mpi.errors import DeadlockError


class Transport:
    """Mailbox-based message store shared by all ranks of one SPMD run."""

    def __init__(self, timeout: float = 60.0):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._boxes: dict[Hashable, deque[Any]] = defaultdict(deque)
        self._cond = threading.Condition()
        self._aborted: BaseException | None = None

    def abort(self, exc: BaseException) -> None:
        """Poison the transport: wake all waiters and make them re-raise.

        Called by the executor when any rank dies, so sibling ranks blocked
        on a receive from the dead rank fail promptly instead of timing out.
        """
        with self._cond:
            self._aborted = exc
            self._cond.notify_all()

    def put(self, key: Hashable, payload: Any) -> None:
        """Deposit a message (non-blocking; mailboxes are unbounded)."""
        with self._cond:
            self._boxes[key].append(payload)
            self._cond.notify_all()

    def get(self, key: Hashable) -> Any:
        """Block until a message is available at ``key`` and pop it."""
        with self._cond:
            while True:
                if self._aborted is not None:
                    raise DeadlockError(
                        f"transport aborted while waiting on {key!r}: "
                        f"{self._aborted!r}"
                    )
                box = self._boxes.get(key)
                if box:
                    payload = box.popleft()
                    if not box:
                        # Keep the dict small across long runs.
                        del self._boxes[key]
                    return payload
                if not self._cond.wait(self.timeout):
                    raise DeadlockError(
                        f"receive on {key!r} timed out after "
                        f"{self.timeout:g}s (likely mismatched send/recv or "
                        f"collective ordering)"
                    )

    def pending(self) -> int:
        """Number of undelivered messages (should be 0 at the end of a run)."""
        with self._cond:
            return sum(len(box) for box in self._boxes.values())
