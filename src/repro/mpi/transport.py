"""Message transports for the simulated MPI runtime.

A *transport* moves opaque payloads between ranks through per-(communicator,
source, destination, tag) mailboxes.  Delivery is FIFO per mailbox, which
matches MPI's non-overtaking guarantee for messages sent on the same
(source, destination, tag, communicator) tuple.

Two implementations exist:

* :class:`ThreadTransport` (alias :class:`Transport`) — the in-process
  store used by the thread executor backend: one dict of deques guarded by
  a condition variable, shared by all rank threads.
* :class:`~repro.mpi.process_transport.ProcessTransport` — the
  cross-process store used by the process executor backend: one OS-level
  inbox queue per rank, with large array payloads parked in POSIX shared
  memory.

Blocking receives time out after ``timeout`` seconds and raise
:class:`~repro.mpi.errors.DeadlockError`; an SPMD program that deadlocks in
real MPI hangs forever, but a test suite should fail fast instead.
"""

from __future__ import annotations

import abc
import threading
from collections import defaultdict, deque
from typing import Any, Hashable

from repro import resources
from repro.mpi.errors import DeadlockError


class TransportBase(abc.ABC):
    """Interface every executor-backend transport must implement.

    Keys are opaque hashables built by the communicator; ``dst`` is the
    *world rank* of the receiving process so transports that physically
    route messages (one inbox per rank) know where to deliver.  The
    thread transport ignores it — all ranks share one mailbox store.
    """

    timeout: float

    #: Whether :meth:`put` already isolates sender and receiver (the
    #: payload is serialized or copied into shared memory on the way out).
    #: When True the communicator skips its defensive pre-send copy; the
    #: thread transport delivers by reference and keeps the default.
    copies_on_send = False

    #: Collective-window protocol (optional).  A transport that sets
    #: ``windows_enabled`` must implement :meth:`window_slot`,
    #: :meth:`create_window`, :meth:`attach_window` and
    #: :meth:`release_window`; the communicator then routes the data
    #: movement of every collective through per-communicator exchange
    #: windows (single-copy, fence-ordered) instead of relaying
    #: point-to-point messages through group rank 0.  The thread
    #: transport keeps the default: all ranks share one address space,
    #: so its "relay" is already a pointer handoff.
    windows_enabled = False

    def window_slot(self, needed: int) -> int:
        """Collective slot size (bytes) for a first payload of ``needed``
        bytes — the adaptive-sizing hint consulted at window creation."""
        raise NotImplementedError("transport has no collective windows")

    def create_window(
        self, size: int, index: int, slot_bytes: int, matrix: bool = False
    ):
        """Create (and own) an exchange window for ``size`` members.

        ``matrix=True`` asks for a P×P pair-slotted window (alltoall /
        scatter); otherwise one slot per member.  Returns an object with
        the :class:`~repro.mpi.process_transport.CollectiveWindow`
        surface (``begin``/``post_size``/``write``/``commit``/``read``/
        ``finish``/``name``/``slot_bytes``..., plus the split fence
        halves ``post_size_nowait``/``wait_posted`` and
        ``commit_nowait``/``wait_written`` that the communicator's
        non-blocking collectives use to defer fence waits to
        ``Request.wait()``).
        """
        raise NotImplementedError("transport has no collective windows")

    def attach_window(
        self,
        name: str,
        size: int,
        index: int,
        slot_bytes: int,
        matrix: bool = False,
    ):
        """Attach the window another member created under ``name``."""
        raise NotImplementedError("transport has no collective windows")

    def release_window(self, win) -> None:
        """Close (and, for the owner, unlink) a window grown out of use."""
        raise NotImplementedError("transport has no collective windows")

    def note_collective(self, op: str, seq: int) -> None:
        """Record the collective this rank is entering (liveness context).

        No-op by default; the process transport writes it to the shared
        status board so rank-death post-mortems can name the dead rank's
        last collective.
        """

    @abc.abstractmethod
    def put(self, key: Hashable, payload: Any, dst: int | None = None) -> None:
        """Deposit a message (non-blocking; mailboxes are unbounded)."""

    @abc.abstractmethod
    def get(self, key: Hashable) -> Any:
        """Block until a message is available at ``key`` and pop it.

        Only the rank that owns the destination side of ``key`` may call
        this (always true for the communicator's usage).
        """

    @abc.abstractmethod
    def abort(self, exc: BaseException) -> None:
        """Poison the transport: wake all waiters and make them re-raise.

        Called by the executor when any rank dies, so sibling ranks blocked
        on a receive from the dead rank fail promptly instead of timing out.
        """

    @abc.abstractmethod
    def pending(self) -> int:
        """Number of undelivered messages visible to this rank."""


class ThreadTransport(TransportBase):
    """Mailbox-based message store shared by all rank threads of one run."""

    def __init__(self, timeout: float = 60.0):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._boxes: dict[Hashable, deque[Any]] = defaultdict(deque)
        self._cond = threading.Condition()
        self._aborted: BaseException | None = None

    def abort(self, exc: BaseException) -> None:
        with self._cond:
            self._aborted = exc
            self._cond.notify_all()

    def put(self, key: Hashable, payload: Any, dst: int | None = None) -> None:
        with self._cond:
            self._boxes[key].append(payload)
            self._cond.notify_all()

    def get(self, key: Hashable) -> Any:
        with self._cond:
            while True:
                resources.check_deadline(f"receive on {key!r}")
                if self._aborted is not None:
                    raise DeadlockError(
                        f"transport aborted while waiting on {key!r}: "
                        f"{self._aborted!r}"
                    )
                box = self._boxes.get(key)
                if box:
                    payload = box.popleft()
                    if not box:
                        # Keep the dict small across long runs.
                        del self._boxes[key]
                    return payload
                # A run deadline shortens the wait so the cooperative
                # check above fires promptly; only an *un*-shortened wait
                # expiring means the transport itself went silent.
                interval = self.timeout
                left = resources.remaining_deadline()
                if left is not None:
                    interval = min(interval, max(left, 0.0) + 0.005)
                if not self._cond.wait(interval) and interval >= self.timeout:
                    raise DeadlockError(
                        f"receive on {key!r} timed out after "
                        f"{self.timeout:g}s (likely mismatched send/recv or "
                        f"collective ordering)"
                    )

    def pending(self) -> int:
        """Number of undelivered messages (should be 0 at the end of a run)."""
        with self._cond:
            return sum(len(box) for box in self._boxes.values())


# Historical name, kept for callers that predate the backend split.
Transport = ThreadTransport
