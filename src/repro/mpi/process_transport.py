"""Cross-process message transport backing the process executor backend.

Each rank owns one ``multiprocessing`` inbox queue.  A send routes the
message to the destination rank's inbox; the receiver drains its inbox into
a local stash and matches mailbox keys, preserving per-sender FIFO order
(the queue preserves each producer's order, which is exactly MPI's
non-overtaking guarantee).

Large ndarray payloads never travel through the queue's pipe: the sender
parks the bytes in a :class:`multiprocessing.shared_memory.SharedMemory`
segment and sends only a small pickled header (name, shape, dtype); the
receiver attaches, copies out, and unlinks the segment.  Everything else —
small arrays, Python scalars, tuples of headers — is pickled.

Poisoning uses a shared event: when any rank dies its transport sets the
event, and every sibling blocked in :meth:`ProcessTransport.get` notices
within one poll interval and raises :class:`DeadlockError`.
"""

from __future__ import annotations

import pickle
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Hashable

import numpy as np

from repro.mpi.errors import DeadlockError
from repro.mpi.transport import TransportBase

#: Arrays at or above this many bytes ride in shared memory; smaller ones
#: are cheaper to pickle straight through the queue's pipe.
SHM_MIN_BYTES = 256

#: Seconds between checks of the abort event while blocked on the inbox.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class ShmHeader:
    """Pickled stand-in for an ndarray whose bytes live in shared memory.

    ``dtype`` is the actual :class:`numpy.dtype` (itself picklable) so
    structured dtypes keep their field definitions.  ``order`` preserves
    the array's memory layout ('C' or 'F'): downstream BLAS takes
    different code paths for transposed operands, so flattening everything
    to C order would break bit-identity with the thread backend.
    """

    name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    order: str


def encode_payload(obj: Any, segments: list[shared_memory.SharedMemory]) -> Any:
    """Replace large ndarrays in ``obj`` with shared-memory headers.

    Recurses through lists/tuples/dicts (the containers the communicator
    and its collectives actually send); anything else is left for pickle.
    Created segments are appended to ``segments`` so the caller can close
    its mappings (or unlink them all if the send fails mid-way).
    """
    if (
        isinstance(obj, np.ndarray)
        and obj.nbytes >= SHM_MIN_BYTES
        # Object-dtype buffers hold PyObject pointers that are meaningless
        # in another process; those arrays must go through pickle instead.
        and not obj.dtype.hasobject
    ):
        order = (
            "F"
            if obj.flags.f_contiguous and not obj.flags.c_contiguous
            else "C"
        )
        src = np.asarray(obj, order=order)
        shm = shared_memory.SharedMemory(create=True, size=src.nbytes)
        segments.append(shm)
        np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf, order=order)[
            ...
        ] = src
        return ShmHeader(shm.name, src.shape, src.dtype, order)
    if isinstance(obj, tuple):
        return tuple(encode_payload(x, segments) for x in obj)
    if isinstance(obj, list):
        return [encode_payload(x, segments) for x in obj]
    if isinstance(obj, dict):
        return {k: encode_payload(v, segments) for k, v in obj.items()}
    return obj


def decode_payload(obj: Any) -> Any:
    """Inverse of :func:`encode_payload`: copy out and unlink segments."""
    if isinstance(obj, ShmHeader):
        shm = shared_memory.SharedMemory(name=obj.name)
        try:
            view = np.ndarray(
                obj.shape,
                dtype=obj.dtype,
                buffer=shm.buf,
                order=obj.order,
            )
            return np.array(view, copy=True)
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
    if isinstance(obj, tuple):
        return tuple(decode_payload(x) for x in obj)
    if isinstance(obj, list):
        return [decode_payload(x) for x in obj]
    if isinstance(obj, dict):
        return {k: decode_payload(v) for k, v in obj.items()}
    return obj


def release_payload(obj: Any) -> None:
    """Unlink every shared-memory segment referenced by an encoded payload.

    Used by the parent to reclaim segments of messages that were still
    undelivered when a run ended (e.g. after a rank failure).
    """
    if isinstance(obj, ShmHeader):
        try:
            shm = shared_memory.SharedMemory(name=obj.name)
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            return
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing receiver
            pass
        return
    if isinstance(obj, (list, tuple)):
        for x in obj:
            release_payload(x)
    elif isinstance(obj, dict):
        for x in obj.values():
            release_payload(x)


class ProcessTransport(TransportBase):
    """One rank-process's view of the shared inter-process mail system.

    Parameters
    ----------
    rank:
        The world rank owning this view (whose inbox :meth:`get` drains).
    inboxes:
        One ``multiprocessing.Queue`` per world rank, shared by fork.
    abort_event:
        ``multiprocessing.Event`` set when any rank dies.
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
    """

    def __init__(self, rank: int, inboxes, abort_event, timeout: float = 60.0):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._rank = rank
        self._inboxes = inboxes
        self._abort = abort_event
        self._stash: dict[Hashable, deque[Any]] = {}

    def put(self, key: Hashable, payload: Any, dst: int | None = None) -> None:
        if dst is None:
            raise ValueError(
                "ProcessTransport.put requires the destination world rank"
            )
        segments: list[shared_memory.SharedMemory] = []
        try:
            blob = pickle.dumps((key, encode_payload(payload, segments)))
        except Exception:
            for shm in segments:
                shm.close()
                shm.unlink()
            raise
        for shm in segments:
            shm.close()
        self._inboxes[dst].put(blob)

    def get(self, key: Hashable) -> Any:
        box = self._stash.get(key)
        if box:
            payload = box.popleft()
            if not box:
                del self._stash[key]
            return payload
        inbox = self._inboxes[self._rank]
        deadline = time.monotonic() + self.timeout
        while True:
            if self._abort.is_set():
                raise DeadlockError(
                    f"transport aborted while waiting on {key!r}: "
                    f"a sibling rank failed"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"receive on {key!r} timed out after "
                    f"{self.timeout:g}s (likely mismatched send/recv or "
                    f"collective ordering)"
                )
            try:
                blob = inbox.get(timeout=min(_POLL_INTERVAL, remaining))
            except queue_mod.Empty:
                continue
            # Any arrival restarts the window, mirroring the thread
            # transport, whose cond.wait timeout restarts on every notify:
            # the timeout detects a *silent* transport, not a slow peer.
            deadline = time.monotonic() + self.timeout
            msg_key, encoded = pickle.loads(blob)
            payload = decode_payload(encoded)
            if msg_key == key:
                return payload
            self._stash.setdefault(msg_key, deque()).append(payload)

    def abort(self, exc: BaseException) -> None:
        self._abort.set()

    def pending(self) -> int:
        """Undelivered messages already drained into this rank's stash.

        Messages still in flight inside the OS queue are not visible; the
        executor separately drains and reclaims those at the end of a run.
        """
        return sum(len(box) for box in self._stash.values())
