"""Cross-process message transport backing the process executor backend.

Each rank owns one ``multiprocessing`` inbox queue.  A send routes the
message to the destination rank's inbox; the receiver drains its inbox into
a local stash and matches mailbox keys, preserving per-sender FIFO order
(the queue preserves each producer's order, which is exactly MPI's
non-overtaking guarantee).

Large ndarray payloads never travel through the queue's pipe: the sender
parks the bytes in a POSIX shared-memory segment and sends only a small
pickled header (name, shape, dtype); everything else — small arrays, Python
scalars, tuples of headers — is pickled.  Three mechanisms keep the hot
path cheap:

* **Segment arena** (:class:`SegmentArena`): segments are drawn from a
  size-bucketed pool of reusable mappings instead of being created and
  unlinked per message.  A send *transfers ownership* of the segment to the
  receiver; when the receiver is done with it, the segment is adopted into
  the receiver's arena and reused for its own future sends, so segments
  circulate between ranks instead of churning through ``shm_open``/
  ``shm_unlink``.
* **Zero-copy receives** (:class:`ShmArrayView`): ``decode_payload`` hands
  the receiver a *read-only* ndarray view directly backed by the shared
  segment.  The segment is recycled into the arena only when the last view
  dies (or :func:`release_view` is called), so large TTM operands are never
  copied on the receive side.
* **Huge-page mappings** (:class:`HugePageSegment`): collective windows
  and arena segments at or above :data:`HUGE_MIN_BYTES` are backed by
  files on the host's hugetlbfs mount when huge pages are reserved,
  cutting TLB pressure on the multi-MiB ring and reduce exchanges; every
  attempt falls back transparently to POSIX shm when the mmap fails, and
  :data:`HUGEPAGE_STATS` / ``CollectiveWindow.backing`` record which
  mapping was used.  ``REPRO_SPMD_HUGEPAGES`` selects the mode (``auto``
  default / ``0`` off / a directory path to use as the mount).
* **Collective windows** (:class:`CollectiveWindow`, :class:`MatrixWindow`):
  each communicator can open preallocated shm windows (MPI-3 RMA style)
  that every collective writes into directly — ``barrier``/``bcast``/
  ``gather``/``allgather``/``reduce``/``allreduce``/
  ``reduce_scatter_block`` through a P-slot window, ``scatter``/
  ``alltoall`` through a P×P pair-slotted one — one barrier-fenced
  single-copy exchange instead of O(P) point-to-point segment hops
  through rank 0.  Initial slots are sized from the communicator's first
  payload (``REPRO_SPMD_WINDOW_SLOT`` pins them instead).  Every fence
  is split into a non-blocking publish half (``post_size_nowait`` /
  ``commit_nowait``) and a wait half (``wait_posted`` / ``wait_written``)
  so the communicator's non-blocking collectives can deposit their
  contribution at post time and defer the fence spins to ``wait()``,
  overlapping them with local compute.

Poisoning uses a shared event: when any rank dies its transport sets the
event, and every sibling blocked in :meth:`ProcessTransport.get` (or
spinning on a window fence) notices within one poll interval and raises
:class:`DeadlockError`.
"""

from __future__ import annotations

import errno
import mmap
import os
import pickle
import queue as queue_mod
import secrets
import struct
import time
import weakref
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Hashable

import numpy as np

from repro import resources
from repro.config import default_for
from repro.mpi.errors import DeadlockError
from repro.mpi.transport import TransportBase

#: Arrays at or above this many bytes ride in shared memory; smaller ones
#: are cheaper to pickle straight through the queue's pipe.
SHM_MIN_BYTES = 256

#: Adaptive poll backoff while blocked on the inbox or a window fence:
#: start fast so small-message latency is not floored at the poll interval,
#: back off exponentially so idle waits stay cheap.
_POLL_MIN_INTERVAL = 0.001
_POLL_MAX_INTERVAL = 0.05

#: How long a window fence polls with bare ``sleep(0)`` scheduler yields
#: before falling back to the exponential sleep above.  Fences between
#: co-scheduled ranks resolve in this regime almost always.
_FENCE_YIELD_SECONDS = 0.002

#: Environment switch: ``0`` disables segment reuse (create/unlink per
#: message, the pre-arena behaviour — useful when bisecting).
ARENA_ENV_VAR = "REPRO_SHM_ARENA"

#: Environment switch: ``0`` disables collective windows (collectives fall
#: back to the point-to-point implementation).
WINDOWS_ENV_VAR = "REPRO_SPMD_WINDOWS"

#: Fixed initial per-rank window slot in bytes; ``0`` (the default) sizes
#: the first window of each communicator adaptively from the payload of
#: its first windowed exchange.
WINDOW_SLOT_ENV_VAR = "REPRO_SPMD_WINDOW_SLOT"

#: Smallest arena bucket (one page), per-bucket free-list cap, and the
#: total bytes an arena may keep pinned in its free lists — recycles
#: beyond the budget unlink instead, so a sweep of huge messages cannot
#: leave gigabytes of dead segments parked in /dev/shm.
_BUCKET_MIN = 4096
_BUCKET_MAX_FREE = 8
_ARENA_MAX_FREE_BYTES = 128 << 20

#: Smallest per-rank slot of a collective window (one page).  The first
#: exchange on a communicator sizes the initial slot from its own payload
#: (see :func:`window_slot_for`), so scalar-only communicators get
#: page-sized windows instead of the former fixed 256 KiB slots; windows
#: still grow in power-of-two buckets when a later payload does not fit.
WINDOW_MIN_SLOT = 4096

#: Huge-page backing for large mappings: ``auto`` (the default — use the
#: host's hugetlbfs mount when huge pages are reserved), ``0`` (never), or
#: an absolute directory path (treat that directory as the mount; lets
#: tests and pre-mounted deployments exercise the file-backed path).
HUGEPAGES_ENV_VAR = "REPRO_SPMD_HUGEPAGES"

#: Only mappings at least one huge page wide (2 MiB on x86-64) are worth
#: the hugetlbfs round-trip; smaller segments stay on POSIX shm.
HUGE_MIN_BYTES = 2 << 20

#: Per-process counters recording which mapping each large segment got:
#: ``mapped`` counts hugetlbfs-backed segments, ``fallbacks`` counts
#: attempts that fell back to POSIX shm because the mmap failed (pages
#: exhausted, mount vanished).  Reset-free — tests snapshot deltas.
HUGEPAGE_STATS = {"mapped": 0, "fallbacks": 0}

#: Name prefix routing attaches: segments created on hugetlbfs carry it,
#: so the receiving process knows which substrate to open by name alone.
_HUGE_PREFIX = "rphp_"

#: Name prefix for POSIX shm segments (and status boards — see
#: ``repro.faults.status``).  Like huge-page names, ``rps_`` names embed
#: the creator's pid, which is what lets :func:`reap_stale_segments`
#: audit /dev/shm after a rank crash: only segments whose creator is a
#: *dead* process of this run are reclaimed.
_SHM_PREFIX = "rps_"

#: Where POSIX shm segments surface as files on Linux (the audit sweeps
#: this directory; on hosts without it the sweep is skipped).
_SHM_DIR = "/dev/shm"

_HP_DIR_CACHE: dict[str, str | None] = {}
_HP_PAGE_CACHE: dict[str, int] = {}


def hugepage_size(directory: str) -> int:
    """The page size of the mount behind ``directory``, in bytes.

    hugetlbfs sets the filesystem block size to its huge page size
    (which is per-mount — a ``pagesize=1G`` mount coexists with 2 MiB
    defaults), so ``statvfs`` reports the right granularity for file
    rounding on any mount; an ordinary directory (the knob's path
    override) reports its small block size and is floored at one page.
    """
    page = _HP_PAGE_CACHE.get(directory)
    if page is None:
        try:
            page = max(int(os.statvfs(directory).f_bsize), 4096)
        except OSError:  # pragma: no cover - directory vanished
            page = 2 << 20
        _HP_PAGE_CACHE[directory] = page
    return page


def _mount_has_free_pages(directory: str) -> bool:
    """Whether the mount behind ``directory`` has pages left to reserve.

    ``statvfs`` reports the *mount's own* pool (``f_bavail`` free blocks
    of its page size) — unlike ``/proc/meminfo``'s ``HugePages_Free``,
    which only counts the default hstate and would wrongly disable a
    ``pagesize=1G`` mount while 2 MiB pages are exhausted.
    """
    try:
        return os.statvfs(directory).f_bavail > 0
    except OSError:  # pragma: no cover - mount vanished
        return False


def _hugepage_mount(mode: str) -> str | None:
    """The directory behind huge-page segment *names* (no free-page gate).

    Cached per knob value, so pooled workers re-resolve after an
    environment change only when the knob itself changed.  ``0``
    disables; a directory path uses that directory as-is (and must
    exist and be writable — a typo'd path is a configuration error, not
    a silent fallback); ``auto``/``1`` picks the first writable
    ``hugetlbfs`` mount from ``/proc/mounts``; anything else is
    rejected.  Attaching an *existing* segment only needs this mount —
    mapping an already-created file reserves no new pages, so attaches
    must not be gated on ``HugePages_Free`` (the creator may have
    consumed them all).
    """
    if mode in _HP_DIR_CACHE:
        return _HP_DIR_CACHE[mode]
    directory: str | None = None
    if mode == "0":
        directory = None
    elif mode.startswith(("/", ".")):
        if not (os.path.isdir(mode) and os.access(mode, os.W_OK)):
            raise ValueError(
                f"{HUGEPAGES_ENV_VAR}={mode!r} is not a writable directory"
            )
        directory = mode
    elif mode in ("auto", "1"):
        try:
            with open("/proc/mounts") as fh:
                for line in fh:
                    fields = line.split()
                    if len(fields) >= 3 and fields[2] == "hugetlbfs":
                        mount = fields[1]
                        if os.path.isdir(mount) and os.access(mount, os.W_OK):
                            directory = mount
                            break
        except OSError:  # pragma: no cover - /proc unreadable
            directory = None
    else:
        raise ValueError(
            f"invalid {HUGEPAGES_ENV_VAR} value {mode!r}: "
            f"use 'auto', '0', or a directory path"
        )
    _HP_DIR_CACHE[mode] = directory
    return directory


def _hugepage_mode() -> str:
    return str(default_for("hugepages")).strip() or "auto"


def hugepage_dir() -> str | None:
    """Directory for *new* huge-page segments, or ``None`` when disabled.

    In auto mode a fresh mapping needs reserved pages, so the mount's
    free-page count is consulted per call (reservations come and go);
    the path override skips the gate — an ordinary directory needs no
    reserved pages at all.
    """
    mode = _hugepage_mode()
    directory = _hugepage_mount(mode)
    if directory is None:
        return None
    if not mode.startswith(("/", ".")) and not _mount_has_free_pages(directory):
        return None
    return directory


class HugePageSegment:
    """A shared segment backed by a file in the hugetlbfs mount.

    Mirrors the slice of :class:`multiprocessing.shared_memory.SharedMemory`
    the transport uses (``name``/``size``/``buf``/``close``/``unlink``),
    so segments of either substrate flow through the arena, the message
    headers, and the collective windows interchangeably.  File-backed
    mappings on hugetlbfs are huge-page-backed without ``MAP_HUGETLB``;
    pointing :func:`hugepage_dir` at an ordinary directory (the path form
    of the knob) exercises the identical code path on normal pages.
    """

    def __init__(self, name: str, create: bool = False, size: int = 0):
        # Creation goes through hugepage_dir() (free-page gated) in
        # create_segment(); attaching by name only needs the mount.
        directory = _hugepage_mount(_hugepage_mode())
        if directory is None:
            raise FileNotFoundError(f"no huge-page directory to open {name!r}")
        self._path = os.path.join(directory, name)
        self.name = name
        self._closed = False
        if create:
            fd = os.open(self._path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        else:
            fd = os.open(self._path, os.O_RDWR)
        try:
            if create:
                page = hugepage_size(directory)
                size = -(-size // page) * page
                os.ftruncate(fd, size)
            else:
                size = os.fstat(fd).st_size
            # On hugetlbfs the reservation happens here: mmap raises
            # ENOMEM when the host cannot back the mapping, which is the
            # signal create_segment() turns into a transparent fallback.
            self._mmap = mmap.mmap(fd, size)
        except BaseException:
            os.close(fd)
            if create:
                try:
                    os.unlink(self._path)
                except FileNotFoundError:  # pragma: no cover - raced unlink
                    pass
            raise
        os.close(fd)
        self.size = size
        self._buf: memoryview | None = memoryview(self._mmap)

    @property
    def buf(self) -> memoryview:
        assert self._buf is not None
        return self._buf

    def close(self) -> None:
        """Drop this process's mapping (never the file — see unlink)."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._buf is not None:
                self._buf.release()
                self._buf = None
            self._mmap.close()
        except BufferError:  # pragma: no cover - a view still exports it;
            pass  # the mapping is reclaimed when the last view dies

    def unlink(self) -> None:
        """Remove the backing file; mappings stay valid until closed.

        Raises ``FileNotFoundError`` when the file is already gone —
        matching ``SharedMemory.unlink`` so the accounting in
        :func:`_close_and_unlink` treats both substrates identically
        (the process that actually removed the file released its bytes).
        """
        os.unlink(self._path)

    def __del__(self):  # pragma: no cover - exercised via GC
        try:
            self.close()
        except Exception:
            pass


#: Huge-page creation failures that mean "this substrate cannot back the
#: mapping here and now" and warrant the transparent POSIX-shm fallback:
#: no reservable pages (ENOMEM), mount full (ENOSPC), or a mount this
#: user cannot write after all (EACCES/EPERM).  Anything else — EINVAL,
#: EMFILE, ... — is a real bug and must surface, not be swallowed as a
#: silent fallback.
_HUGE_FALLBACK_ERRNOS = frozenset(
    {errno.ENOMEM, errno.ENOSPC, errno.EACCES, errno.EPERM}
)


def create_segment(nbytes: int, purpose: str = "segment"):
    """A fresh shared segment of at least ``nbytes``.

    The resource governor gates every creation first: the ``purpose``
    site (``"arena"``/``"window"``/...) fires any injected resource
    faults, and a configured ``REPRO_SHM_BUDGET`` denies the request
    with :class:`~repro.resources.BudgetExceededError` (an
    ``errno.ENOSPC`` ``OSError``) *before* touching ``/dev/shm`` — the
    caller's degradation handler routes either denial or a real tmpfs
    ``ENOSPC`` to the p2p/pickle path.  Successful creations are charged
    to the governor by their actual (page-rounded) size and released on
    unlink.

    Large requests — at least :data:`HUGE_MIN_BYTES` *and* one page of
    the backing mount (sizes are rounded up to whole pages, so smaller
    requests would waste most of a page on a ``pagesize=1G`` mount) —
    are tried on the huge-page substrate first when :func:`hugepage_dir`
    provides one, cutting TLB pressure on the multi-MiB windows and
    arena buckets the distributed kernels exchange, and fall back
    transparently to POSIX shm when the mmap hits a resource limit;
    :data:`HUGEPAGE_STATS` records which mapping each request got.
    """
    gov = resources.governor()
    gov.gate(purpose, nbytes)
    if nbytes >= HUGE_MIN_BYTES:
        directory = hugepage_dir()
        if directory is not None and nbytes >= hugepage_size(directory):
            name = f"{_HUGE_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
            try:
                seg = HugePageSegment(name, create=True, size=nbytes)
            except OSError as exc:
                if exc.errno not in _HUGE_FALLBACK_ERRNOS:
                    raise
                HUGEPAGE_STATS["fallbacks"] += 1
            else:
                HUGEPAGE_STATS["mapped"] += 1
                gov.charge(seg.size)
                return seg
    for _ in range(3):
        name = f"{_SHM_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
        try:
            shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        except FileExistsError:  # pragma: no cover - 64-bit token collision
            continue
        gov.charge(shm.size)
        return shm
    # Astronomically unlikely; fall back to an auto-generated psm_ name
    # (invisible to the crash audit but still tracker-reclaimed).
    shm = shared_memory.SharedMemory(create=True, size=nbytes)  # pragma: no cover
    gov.charge(shm.size)  # pragma: no cover
    return shm  # pragma: no cover


def attach_segment(name: str):
    """Open an existing segment by name, on whichever substrate created it
    (huge-page names carry a routing prefix)."""
    if name.startswith(_HUGE_PREFIX):
        return HugePageSegment(name)
    return shared_memory.SharedMemory(name=name)


def segment_backing(segment) -> str:
    """``"hugetlb"`` or ``"shm"`` — which substrate backs ``segment``."""
    return "hugetlb" if isinstance(segment, HugePageSegment) else "shm"


def reap_stale_hugepage_segments(creator_pids) -> list[str]:
    """Unlink huge-page segment files left behind by dead rank workers.

    POSIX shm segments leaked by a killed worker are eventually reclaimed
    by multiprocessing's resource tracker; hugetlbfs files have no such
    net, and a leaked multi-MiB file pins its reserved pages until
    someone removes it (starving every later auto-mode run).  Segment
    names embed the creator's pid; the sweep is scoped to
    ``creator_pids`` — the worker pids the calling executor just joined —
    so concurrent runs sharing the mount are never touched (ownership is
    transferable between a run's processes, but never across runs).  A
    liveness re-check guards against pid reuse: a still-running pid is
    skipped (conservative — a leak beats unlinking live data).  Returns
    the removed names.
    """
    creator_pids = {int(p) for p in creator_pids if p is not None}
    creator_pids.discard(os.getpid())
    if not creator_pids:
        return []
    try:
        mount = _hugepage_mount(_hugepage_mode())
    except ValueError:  # misconfigured knob: nothing we can sweep
        return []
    if mount is None:
        return []
    removed = []
    try:
        names = os.listdir(mount)
    except (FileNotFoundError, NotADirectoryError):  # pragma: no cover
        return []  # mount vanished
    for name in names:
        if not name.startswith(_HUGE_PREFIX):
            continue
        try:
            pid = int(name[len(_HUGE_PREFIX):].split("_", 1)[0])
        except ValueError:
            continue
        if pid not in creator_pids:
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                os.unlink(os.path.join(mount, name))
                removed.append(name)
            except FileNotFoundError:  # pragma: no cover - raced removal
                pass
        except PermissionError:  # pragma: no cover - reused pid, other user
            pass
    return removed


def reap_stale_segments(creator_pids) -> list[str]:
    """General crash audit: reclaim every segment a dead world owned.

    Extends :func:`reap_stale_hugepage_segments` to POSIX shm: all
    ``rps_``-named segments (arena buckets, stash payloads, collective
    windows, status boards) whose embedded creator pid is in
    ``creator_pids`` and no longer running are attached and unlinked.
    Attaching before unlinking keeps the multiprocessing resource
    tracker balanced (it registers on attach and unregisters on
    unlink), so no leak warnings fire at interpreter exit.  Ownership
    of a segment is transferable between a run's processes, so the
    sweep runs only after the whole world is down — the caller passes
    the pids it just joined or reaped.  Returns the removed names.
    """
    creator_pids = {int(p) for p in creator_pids if p is not None}
    creator_pids.discard(os.getpid())
    removed = reap_stale_hugepage_segments(creator_pids)
    if not creator_pids:
        return removed
    try:
        names = os.listdir(_SHM_DIR)
    except (FileNotFoundError, NotADirectoryError):
        return removed  # no /dev/shm on this host: nothing to sweep
    for name in names:
        if not name.startswith(_SHM_PREFIX):
            continue
        try:
            pid = int(name[len(_SHM_PREFIX):].split("_", 1)[0])
        except ValueError:
            continue
        if pid not in creator_pids:
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:  # raced removal
                continue
            except OSError:  # pragma: no cover - unreadable entry
                continue
            _close_and_unlink(shm)
            removed.append(name)
        except PermissionError:  # pragma: no cover - reused pid, other user
            pass
    return removed


def window_slot_for(nbytes: int, base: int = WINDOW_MIN_SLOT) -> int:
    """Smallest power-of-two multiple of ``base`` holding ``nbytes``."""
    slot = max(base, WINDOW_MIN_SLOT)
    while slot < nbytes:
        slot <<= 1
    return slot


def _bucket_of(nbytes: int) -> int:
    """Smallest power-of-two bucket (>= one page) holding ``nbytes``."""
    size = _BUCKET_MIN
    while size < nbytes:
        size <<= 1
    return size


class SegmentArena:
    """Per-process pool of reusable shared-memory segments.

    ``acquire`` hands out a mapped segment of a power-of-two bucket size,
    reusing a pooled one when available.  Ownership is explicit: segments
    in the free lists belong to this process and are unlinked at
    :meth:`teardown`; a segment sent to another rank is owned by the
    message in flight until the receiver adopts it (see
    :class:`_SegmentLease`) or the executor reclaims it.
    """

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = bool(default_for("arena"))
        self.enabled = enabled
        self._free: dict[int, deque[shared_memory.SharedMemory]] = {}
        self._free_bytes = 0
        self._leases: weakref.WeakSet[_SegmentLease] = weakref.WeakSet()
        self.created = 0
        self.reused = 0
        self.adopted = 0

    def acquire(self, nbytes: int) -> shared_memory.SharedMemory:
        """A mapped segment of at least ``nbytes`` (caller owns it).

        Buckets at or above :data:`HUGE_MIN_BYTES` come from the
        huge-page substrate when the host provides one (see
        :func:`create_segment`); either way the segment circulates
        through the same free lists.
        """
        bucket = _bucket_of(nbytes)
        box = self._free.get(bucket)
        if box:
            self.reused += 1
            self._free_bytes -= bucket
            return box.popleft()
        self.created += 1
        return create_segment(bucket, purpose="arena")

    def recycle(self, shm: shared_memory.SharedMemory) -> None:
        """Return an owned segment to the free list (or unlink it)."""
        bucket = _BUCKET_MIN
        while bucket * 2 <= shm.size:
            bucket *= 2
        box = self._free.setdefault(bucket, deque())
        if (
            self.enabled
            and len(box) < _BUCKET_MAX_FREE
            and self._free_bytes + bucket <= _ARENA_MAX_FREE_BYTES
        ):
            box.append(shm)
            self._free_bytes += bucket
            return
        _close_and_unlink(shm)

    def adopt(self, shm: shared_memory.SharedMemory) -> None:
        """Take ownership of a segment another process created."""
        self.adopted += 1
        self.recycle(shm)

    def track(self, lease: "_SegmentLease") -> None:
        self._leases.add(lease)

    def teardown(self) -> None:
        """Release outstanding leases and unlink every pooled segment."""
        for lease in list(self._leases):
            lease.close()
        self._leases.clear()
        for box in self._free.values():
            while box:
                _close_and_unlink(box.popleft())
        self._free.clear()
        self._free_bytes = 0


def _close_and_unlink(shm: shared_memory.SharedMemory) -> None:
    nbytes = int(getattr(shm, "size", 0))
    try:
        shm.close()
    except BufferError:  # pragma: no cover - a view still exports the buffer
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already reclaimed
        return  # whoever unlinked it released its bytes
    # Release by the unlinker, not the creator: ownership of a segment is
    # transferable between a world's processes, and the resource board
    # sums per-process ledgers, so the world total nets out correctly.
    resources.governor().release(nbytes)


_ARENA: SegmentArena | None = None


def process_arena() -> SegmentArena:
    """This process's segment arena (created lazily, reset after fork)."""
    global _ARENA
    if _ARENA is None:
        _ARENA = SegmentArena()
    return _ARENA


def _reset_after_fork() -> None:
    # A child must not inherit the parent's arena: the pooled segments in
    # it are owned by the parent, and two processes unlinking or reusing
    # the same free list would corrupt messages.  Dropping the reference
    # only closes the child's inherited mappings (SharedMemory.__del__
    # never unlinks).
    global _ARENA
    _ARENA = None


os.register_at_fork(after_in_child=_reset_after_fork)


class _SegmentLease:
    """Keeps a received segment alive while views of it exist.

    Created by :func:`decode_payload`; held by every
    :class:`ShmArrayView` over the segment.  When the last view dies (or
    :meth:`close` is called explicitly) the segment is adopted into this
    process's arena and becomes available for its own sends.
    """

    __slots__ = ("_arena", "_shm", "_closed", "__weakref__")

    def __init__(self, arena: SegmentArena, shm: shared_memory.SharedMemory):
        self._arena = arena
        self._shm = shm
        self._closed = False
        arena.track(self)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._arena.adopt(self._shm)

    def __del__(self):  # pragma: no cover - exercised via GC
        try:
            self.close()
        except Exception:
            pass


class ShmArrayView(np.ndarray):
    """Read-only ndarray backed directly by a shared-memory segment.

    The receive-side half of the zero-copy path: no bytes are copied out
    of the segment.  The view (and everything derived from it) keeps the
    segment leased; the segment returns to the arena when the last view is
    garbage-collected or :func:`release_view` is called.  The buffer is
    read-only because the memory may be reused by another rank the moment
    the lease is released — copy (``np.array(view)``) before mutating.
    """

    def __new__(
        cls,
        lease: _SegmentLease,
        shape: tuple[int, ...],
        dtype: np.dtype,
        order: str,
    ):
        obj = super().__new__(
            cls, shape, dtype=dtype, buffer=lease._shm.buf, order=order
        )
        obj._lease = lease
        obj.flags.writeable = False
        return obj

    def __array_finalize__(self, obj):
        if not hasattr(self, "_lease"):
            self._lease = getattr(obj, "_lease", None)

    def release(self) -> None:
        """Return the backing segment to the arena immediately.

        After this the view's contents may be overwritten at any time;
        only call it when the data has been consumed or copied.
        """
        if self._lease is not None:
            self._lease.close()


def release_view(obj: Any) -> None:
    """Explicitly release the segment lease behind a received view, if any."""
    if isinstance(obj, ShmArrayView):
        obj.release()


@dataclass(frozen=True)
class ShmHeader:
    """Pickled stand-in for an ndarray whose bytes live in shared memory.

    ``dtype`` is the actual :class:`numpy.dtype` (itself picklable) so
    structured dtypes keep their field definitions.  ``order`` preserves
    the array's memory layout ('C' or 'F'): downstream BLAS takes
    different code paths for transposed operands, so flattening everything
    to C order would break bit-identity with the thread backend.
    """

    name: str
    shape: tuple[int, ...]
    dtype: np.dtype
    order: str


def _layout_order(arr: np.ndarray) -> str:
    return (
        "F" if arr.flags.f_contiguous and not arr.flags.c_contiguous else "C"
    )


def encode_payload(
    obj: Any,
    segments: list[shared_memory.SharedMemory],
    arena: SegmentArena | None = None,
) -> Any:
    """Replace large ndarrays in ``obj`` with shared-memory headers.

    Recurses through lists/tuples/dicts (the containers the communicator
    and its collectives actually send); anything else is left for pickle.
    Segments come from ``arena`` when given (reusing pooled mappings) and
    are appended to ``segments`` so the caller can recycle them if the
    send fails mid-way; a completed send transfers their ownership to the
    receiver.

    Degrades gracefully under exhaustion: when the segment cannot be
    created — tmpfs ``ENOSPC``/``ENOMEM``, a budget denial, or an
    injected ``enospc`` fault at the ``arena`` site — the array is left
    in place so it rides the pickle stream instead, bit-identically; the
    fallback is recorded on the resource governor.  Any other ``OSError``
    still propagates.
    """
    if (
        isinstance(obj, np.ndarray)
        and obj.nbytes >= SHM_MIN_BYTES
        # Object-dtype buffers hold PyObject pointers that are meaningless
        # in another process; those arrays must go through pickle instead.
        and not obj.dtype.hasobject
    ):
        order = _layout_order(obj)
        src = np.asarray(obj, order=order)
        try:
            if arena is not None:
                shm = arena.acquire(src.nbytes)
            else:
                shm = create_segment(src.nbytes, purpose="arena")
        except OSError as exc:
            if not resources.is_exhaustion(exc):
                raise
            resources.governor().note_degradation(
                "arena", "pickle", src.nbytes, str(exc)
            )
            return obj
        segments.append(shm)
        np.ndarray(src.shape, dtype=src.dtype, buffer=shm.buf, order=order)[
            ...
        ] = src
        return ShmHeader(shm.name, src.shape, src.dtype, order)
    if isinstance(obj, tuple):
        return tuple(encode_payload(x, segments, arena) for x in obj)
    if isinstance(obj, list):
        return [encode_payload(x, segments, arena) for x in obj]
    if isinstance(obj, dict):
        return {k: encode_payload(v, segments, arena) for k, v in obj.items()}
    return obj


def decode_payload(
    obj: Any, arena: SegmentArena | None = None, copy: bool = False
) -> Any:
    """Inverse of :func:`encode_payload`.

    With ``copy=False`` (the receive fast path) segment-backed arrays come
    back as read-only :class:`ShmArrayView` instances — no bytes are
    copied; the segment is recycled into ``arena`` when the last view
    dies.  With ``copy=True`` the data is copied out immediately and the
    segment recycled (used for one-shot payloads such as pool task
    arguments, where the caller expects a private writable array).

    Without an ``arena`` the pre-arena semantics apply: copy out and
    unlink the segment on the spot.
    """
    if isinstance(obj, ShmHeader):
        shm = attach_segment(obj.name)
        if arena is None:
            try:
                view = np.ndarray(
                    obj.shape, dtype=obj.dtype, buffer=shm.buf, order=obj.order
                )
                return np.array(view, copy=True)
            finally:
                _close_and_unlink(shm)
        lease = _SegmentLease(arena, shm)
        view = ShmArrayView(lease, obj.shape, obj.dtype, obj.order)
        if not copy:
            return view
        out = np.array(view, copy=True)
        del view
        lease.close()
        return out
    if isinstance(obj, tuple):
        return tuple(decode_payload(x, arena, copy) for x in obj)
    if isinstance(obj, list):
        return [decode_payload(x, arena, copy) for x in obj]
    if isinstance(obj, dict):
        return {k: decode_payload(v, arena, copy) for k, v in obj.items()}
    return obj


def decode_borrowed(obj: Any) -> Any:
    """Copy data out of segments the *sender still owns*.

    Used for pool task arguments: the dispatching parent stages them in
    its own arena once, every worker copies its arguments out (attach,
    copy, close — never unlink, never adopt), and the parent recycles the
    segments when the run completes.  This keeps one staged copy total
    instead of one per rank.
    """
    if isinstance(obj, ShmHeader):
        shm = attach_segment(obj.name)
        try:
            view = np.ndarray(
                obj.shape, dtype=obj.dtype, buffer=shm.buf, order=obj.order
            )
            return np.array(view, copy=True)
        finally:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - lingering export
                pass
    if isinstance(obj, tuple):
        return tuple(decode_borrowed(x) for x in obj)
    if isinstance(obj, list):
        return [decode_borrowed(x) for x in obj]
    if isinstance(obj, dict):
        return {k: decode_borrowed(v) for k, v in obj.items()}
    return obj


def release_payload(obj: Any) -> None:
    """Unlink every shared-memory segment referenced by an encoded payload.

    Used to reclaim segments of messages that were never delivered (runs
    that ended with undrained inboxes, stale pooled-run messages): the
    send transferred ownership to the message, so with the receiver gone
    somebody must unlink the name.
    """
    if isinstance(obj, ShmHeader):
        try:
            shm = attach_segment(obj.name)
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            return
        _close_and_unlink(shm)
        return
    if isinstance(obj, (list, tuple)):
        for x in obj:
            release_payload(x)
    elif isinstance(obj, dict):
        for x in obj.values():
            release_payload(x)


# -- collective windows ------------------------------------------------------

#: Slot prefix: little-endian uint64 length of the pickled metadata blob.
_META_LEN = struct.Struct("<Q")


def pack_collective(obj: Any) -> tuple[bytes, np.ndarray | None]:
    """Split a collective contribution into (prefix bytes, raw payload).

    Plain ndarrays travel as raw bytes after a tiny pickled header (shape,
    dtype, layout order — the same layout preservation as point-to-point
    sends); everything else is pickled whole into the prefix.
    """
    if isinstance(obj, np.ndarray) and not obj.dtype.hasobject:
        order = _layout_order(obj)
        src = np.asarray(obj, order=order)
        meta = pickle.dumps(("nd", src.shape, src.dtype, order))
        return _META_LEN.pack(len(meta)) + meta, src
    meta = pickle.dumps(("py",))
    return _META_LEN.pack(len(meta)) + meta + pickle.dumps(obj), None


def packed_nbytes(prefix: bytes, payload: np.ndarray | None) -> int:
    return len(prefix) + (payload.nbytes if payload is not None else 0)


def _write_packed(
    slot: memoryview, prefix: bytes, payload: np.ndarray | None
) -> None:
    slot[: len(prefix)] = prefix
    if payload is not None and payload.nbytes:
        dst = np.ndarray(
            payload.shape,
            dtype=payload.dtype,
            buffer=slot[len(prefix) : len(prefix) + payload.nbytes],
            order=_layout_order(payload),
        )
        dst[...] = payload


def _read_packed(slot: memoryview) -> Any:
    """Decode one slot, copying the payload out of the window."""
    (meta_len,) = _META_LEN.unpack(slot[: _META_LEN.size])
    off = _META_LEN.size + meta_len
    meta = pickle.loads(slot[_META_LEN.size : off])
    if meta[0] == "nd":
        _, shape, dtype, order = meta
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        view = np.ndarray(
            shape, dtype=dtype, buffer=slot[off : off + nbytes], order=order
        )
        return np.array(view, copy=True)
    return pickle.loads(slot[off:])


class CollectiveWindow:
    """A preallocated per-communicator shared-memory exchange window.

    Layout: six int64 flag arrays of length P (``sizes``, ``posted``,
    ``written``, ``done``, ``words``, ``digests``), one int64 generation
    counter per data slot, then the P fixed-size data slots (P×P for
    :class:`MatrixWindow`).  Every flag slot has exactly one writer (its
    rank), so fences need no atomic read-modify-write: a rank publishes
    by storing the current exchange sequence number into its own slot
    and spins until every slot reaches the sequence.  One exchange is
    write → fence → read → fence, i.e. a single data copy per reader
    instead of the O(P) point-to-point hops of the relayed collectives.

    ``digests`` and the slot generations serve the SPMD sanitizer
    (:mod:`repro.analysis.sanitizer`): each rank's collective-signature
    digest rides the size fence so the communicator can detect diverging
    collectives without extra messages, and every :meth:`write_to` /
    :meth:`write_pair` stamps its slot's generation so a read of a stale
    or unfenced slot is detectable.  Both are single int64 stores on the
    hot path; the *checks* run only when ``sanitize`` is positive.

    ``words`` carries each rank's *modeled* contribution size (in
    8-byte words) alongside the exchange: collectives whose closed-form
    charge depends on sizes only some ranks know locally (gather's
    total, alltoall's heaviest row) read :meth:`total_words` /
    :meth:`max_words` after the size fence, so every member charges the
    identical cost without extra messages.

    Portability note: the data-before-flag ordering relies on the
    total-store-order guarantee of x86-64 (the platform this toolchain
    targets); on architectures with weaker memory models (aarch64) the
    plain stores carry no fence, so set ``REPRO_SPMD_WINDOWS=0`` there to
    route collectives through the queue-backed point-to-point path, whose
    ordering the OS guarantees.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        size: int,
        index: int,
        slot_bytes: int,
        owner: bool,
        abort_event,
        timeout: float,
        sanitize: int = 0,
        faults=None,
        status=None,
    ):
        self._shm = shm
        self.size = size
        self.index = index
        self.slot_bytes = slot_bytes
        self.owner = owner
        self._abort = abort_event
        self.timeout = timeout
        self.sanitize = sanitize
        self._faults = faults
        self._status = status
        self.seq = 0
        flag_bytes = 8 * size
        n_data = self._n_data_slots(size)
        buf = shm.buf
        self._sizes = np.frombuffer(buf, np.int64, size, offset=0)
        self._posted = np.frombuffer(buf, np.int64, size, offset=flag_bytes)
        self._written = np.frombuffer(
            buf, np.int64, size, offset=2 * flag_bytes
        )
        self._done = np.frombuffer(buf, np.int64, size, offset=3 * flag_bytes)
        self._words = np.frombuffer(buf, np.int64, size, offset=4 * flag_bytes)
        self._digests = np.frombuffer(
            buf, np.int64, size, offset=5 * flag_bytes
        )
        self._gen = np.frombuffer(
            buf, np.int64, n_data, offset=6 * flag_bytes
        )
        self._data_off = 6 * flag_bytes + 8 * n_data
        self._closed = False
        #: Which substrate maps the window: ``"hugetlb"`` when the segment
        #: lives on the hugetlbfs mount, ``"shm"`` otherwise.  Recorded so
        #: benchmarks and tests can tell whether the huge-page request was
        #: honoured or transparently fell back.
        self.backing = segment_backing(shm)

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def _n_data_slots(cls, size: int) -> int:
        """Data slots backing a P-member window (P×P for matrix windows)."""
        return size

    @classmethod
    def create(
        cls,
        size: int,
        index: int,
        slot_bytes: int,
        abort_event,
        timeout: float,
        sanitize: int = 0,
        faults=None,
        status=None,
    ) -> "CollectiveWindow":
        n_data = cls._n_data_slots(size)
        total = 6 * 8 * size + 8 * n_data + n_data * slot_bytes
        # Multi-MiB windows ask for huge-page backing (transparent shm
        # fallback); fresh segments of either substrate are zero-filled by
        # the OS, so all flags start at 0 — exactly "sequence 0 complete".
        shm = create_segment(total, purpose="window")
        return cls(
            shm,
            size,
            index,
            slot_bytes,
            True,
            abort_event,
            timeout,
            sanitize,
            faults=faults,
            status=status,
        )

    @classmethod
    def attach(
        cls,
        name: str,
        size: int,
        index: int,
        slot_bytes: int,
        abort_event,
        timeout: float,
        sanitize: int = 0,
        faults=None,
        status=None,
    ) -> "CollectiveWindow":
        try:
            shm = attach_segment(name)
        except FileNotFoundError:
            # The creator failed and reclaimed the window before we got
            # here; surface it as the poisoned-transport error it is.
            exc = (
                status.dead_error(f"attaching window {name!r}")
                if status is not None
                else None
            )
            if exc is not None:
                raise exc from None
            raise DeadlockError(
                f"collective window {name!r} vanished before attach: "
                f"a sibling rank failed"
            ) from None
        return cls(
            shm,
            size,
            index,
            slot_bytes,
            False,
            abort_event,
            timeout,
            sanitize,
            faults=faults,
            status=status,
        )

    # -- fences -------------------------------------------------------------

    def _dead_sibling(self, doing: str):
        """RankDeadError when the status board records a death, else None."""
        if self._status is None:
            return None
        return self._status.dead_error(doing)

    def _wait(self, flags: np.ndarray, threshold: int, what: str) -> None:
        if self._faults is not None:
            self._faults.fire("fence")
        if int(flags.min()) >= threshold:
            return
        deadline = time.monotonic() + self.timeout
        interval = _POLL_MIN_INTERVAL
        # Fences usually resolve within microseconds of each other, so
        # poll with a bare scheduler yield first; only a laggard fence
        # falls back to the exponential sleep (which would otherwise
        # floor every barrier-like exchange at the 1 ms poll interval).
        yield_deadline = time.monotonic() + _FENCE_YIELD_SECONDS
        last_progress = int((flags >= threshold).sum())
        while True:
            resources.check_deadline(f"window {what} fence")
            if self._abort is not None and self._abort.is_set():
                exc = self._dead_sibling(f"waiting on window {what}")
                if exc is not None:
                    raise exc
                raise DeadlockError(
                    f"transport aborted while waiting on window {what}: "
                    f"a sibling rank failed"
                )
            ready = int((flags >= threshold).sum())
            if ready >= self.size:
                return
            now = time.monotonic()
            if ready > last_progress:
                # Progress restarts the window, like the point-to-point
                # timeout: it detects a silent transport, not a slow peer.
                last_progress = ready
                deadline = now + self.timeout
                interval = _POLL_MIN_INTERVAL
            if now > deadline:
                exc = self._dead_sibling(f"waiting on window {what}")
                if exc is not None:
                    raise exc
                raise DeadlockError(
                    f"window {what} fence timed out after {self.timeout:g}s "
                    f"(likely mismatched collective ordering)"
                )
            if now < yield_deadline:
                time.sleep(0)  # yield the core to the rank we wait on
                continue
            time.sleep(interval)
            interval = min(interval * 2, _POLL_MAX_INTERVAL)

    def begin(self) -> int:
        """Open the next exchange: wait until the previous one fully drained."""
        self.seq += 1
        self._wait(self._done, self.seq - 1, "reuse")
        return self.seq

    def fence(self) -> int:
        """One zero-byte rendezvous (the whole of ``barrier``).

        A fence moves no data, so the rank publishes its arrival
        (``posted``) and its round completion (``done``) in the same
        breath before waiting: nobody reads after the wait, and the next
        round's reuse check is satisfied the moment everyone has posted
        — one global rendezvous per barrier instead of three fences.
        The reuse wait up front still protects the *previous* round's
        readers from this rank's flag overwrites.
        """
        self.seq += 1
        self._wait(self._done, self.seq - 1, "reuse")
        self._sizes[self.index] = 0
        self._words[self.index] = 0
        self._done[self.index] = self.seq
        self._posted[self.index] = self.seq
        self._wait(self._posted, self.seq, "fence")
        return self.seq

    def post_size_nowait(
        self, nbytes: int, words: int = 0, digest: int = 0
    ) -> None:
        """Publish this rank's packed size (bytes) and modeled ``words``
        without waiting for the peers — the non-blocking half of
        :meth:`post_size`.  Pair with :meth:`wait_posted` (typically at a
        request's ``wait()``) before trusting ``max``/``total`` readers.
        ``digest`` is the sanitizer's collective-signature digest riding
        the fence (0 when the sanitizer is off)."""
        self._words[self.index] = words
        self._digests[self.index] = digest
        self._sizes[self.index] = nbytes
        self._posted[self.index] = self.seq

    def wait_posted(self) -> int:
        """Finish the size fence: wait until every rank posted this round's
        size, then return the max packed size (drives window growth)."""
        self._wait(self._posted, self.seq, "size exchange")
        return int(self._sizes.max())

    def post_size(self, nbytes: int, words: int = 0, digest: int = 0) -> int:
        """Publish this rank's packed size (bytes) and modeled ``words``;
        return the max packed size over ranks (drives window growth)."""
        self.post_size_nowait(nbytes, words, digest)
        return self.wait_posted()

    def digest_mismatch_ranks(self, digest: int) -> list[int]:
        """Group ranks whose posted signature digest differs from
        ``digest`` (valid after the size fence, like ``max_words``)."""
        return [
            rank
            for rank in range(self.size)
            if int(self._digests[rank]) != digest
        ]

    def total_words(self) -> int:
        """Sum of all ranks' posted modeled words (valid after the size
        fence and until this rank's next :meth:`post_size`)."""
        return int(self._words.sum())

    def max_words(self) -> int:
        """Largest posted modeled word count over ranks (same validity
        window as :meth:`total_words`)."""
        return int(self._words.max())

    def write(self, prefix: bytes, payload: np.ndarray | None) -> None:
        self.write_to(self.index, prefix, payload)

    def write_to(
        self, slot: int, prefix: bytes, payload: np.ndarray | None
    ) -> None:
        """Write a packed contribution into an arbitrary data slot.

        Data slots need one writer *per round*, not one writer forever:
        scatter's root fills every member's slot in its round (nobody
        else writes that round), which is as single-writer as the usual
        own-slot discipline.  The flag arrays stay strictly per-rank.
        """
        self._gen[slot] = self.seq
        off = self._data_off + slot * self.slot_bytes
        _write_packed(
            self._shm.buf[off : off + self.slot_bytes], prefix, payload
        )

    def commit_nowait(self) -> None:
        """Publish this rank's write without waiting for the peers — the
        non-blocking half of :meth:`commit`.  Readers must still call
        :meth:`wait_written` before touching other ranks' slots."""
        self._written[self.index] = self.seq

    def wait_written(self) -> None:
        """Finish the write fence: wait until every rank committed."""
        self._wait(self._written, self.seq, "write fence")

    def commit(self) -> None:
        self.commit_nowait()
        self.wait_written()

    def _check_slot(self, slot: int, writer: str) -> None:
        """Level-2 happens-before check for one data-slot read."""
        from repro.mpi.errors import WindowProtocolError

        if int(self._written.min()) < self.seq:
            raise WindowProtocolError(
                f"rank {self.index}: read of window slot {slot} before the "
                f"round-{self.seq} write fence completed (read-before-fence; "
                f"call wait_written/commit first)"
            )
        gen = int(self._gen[slot])
        if gen != self.seq:
            raise WindowProtocolError(
                f"rank {self.index}: read of stale window slot {slot} "
                f"({writer} last wrote it in round {gen}, current round is "
                f"{self.seq}): no rank contributed to this slot this round"
            )

    def read(self, rank: int) -> Any:
        if self.sanitize >= 2:
            self._check_slot(rank, f"rank {rank}")
        off = self._data_off + rank * self.slot_bytes
        return _read_packed(self._shm.buf[off : off + self.slot_bytes])

    def finish(self) -> None:
        self._done[self.index] = self.seq

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop the mapping; the creating rank also unlinks the name."""
        if self._closed:
            return
        self._closed = True
        # The flag arrays export shm.buf; drop them before closing.
        del self._sizes, self._posted, self._written, self._done, self._words
        del self._digests, self._gen
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - lingering export
            pass
        if self.owner:
            nbytes = int(getattr(self._shm, "size", 0))
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - reclaimed
                pass  # whoever unlinked it released its bytes
            else:
                resources.governor().release(nbytes)


class MatrixWindow(CollectiveWindow):
    """A P×P pair-slotted window for ``alltoall``.

    Slot ``(src, dst)`` has exactly one writer (rank ``src``) and one
    reader (rank ``dst``), so a full personalized exchange needs a single
    write → fence → read round: rank ``i`` writes its row with
    :meth:`write_pair`, the shared commit fence orders all P² writes, and
    every rank reads its column with :meth:`read_pair`.  (Scatter, whose
    only writer is the root, rides the plain P-slot window instead: the
    root fills each member's slot via ``write_to``.)  Fences and growth
    are inherited unchanged from :class:`CollectiveWindow`;
    ``slot_bytes`` bounds one *pair* payload, and the posted size is
    each rank's largest pair, so growth decisions stay collective.
    """

    @classmethod
    def _n_data_slots(cls, size: int) -> int:
        return size * size

    def _pair_off(self, src: int, dst: int) -> int:
        return self._data_off + (src * self.size + dst) * self.slot_bytes

    def write_pair(
        self, dst: int, prefix: bytes, payload: np.ndarray | None
    ) -> None:
        """Write this rank's contribution destined for rank ``dst``."""
        self._gen[self.index * self.size + dst] = self.seq
        off = self._pair_off(self.index, dst)
        _write_packed(
            self._shm.buf[off : off + self.slot_bytes], prefix, payload
        )

    def read_pair(self, src: int) -> Any:
        """Read the contribution rank ``src`` wrote for this rank."""
        if self.sanitize >= 2:
            self._check_slot(src * self.size + self.index, f"rank {src}")
        off = self._pair_off(src, self.index)
        return _read_packed(self._shm.buf[off : off + self.slot_bytes])

    # The per-rank slot accessors make no sense on a pair matrix; fail
    # loudly if a collective confuses its window kinds.
    def write(self, prefix, payload):  # pragma: no cover - guard
        raise TypeError("MatrixWindow requires write_pair(dst, ...)")

    def read(self, rank):  # pragma: no cover - guard
        raise TypeError("MatrixWindow requires read_pair(src)")


class ProcessTransport(TransportBase):
    """One rank-process's view of the shared inter-process mail system.

    Parameters
    ----------
    rank:
        The world rank owning this view (whose inbox :meth:`get` drains).
    inboxes:
        One ``multiprocessing.Queue`` per world rank, shared by fork.
    abort_event:
        ``multiprocessing.Event`` set when any rank dies.
    timeout:
        Deadlock-detection timeout for blocking receives, in seconds.
    run_seq:
        Sequence number of the SPMD run this transport serves.  Pooled
        workers reuse inbox queues across runs; a message enveloped with a
        different ``run_seq`` is a straggler from an earlier run and is
        dropped (its segments reclaimed) instead of being delivered.
    windows:
        Collective-window override: ``True``/``False`` force the window
        fast path on/off; ``None`` (default) consults
        ``REPRO_SPMD_WINDOWS``.
    window_slot:
        Fixed initial window slot in bytes; ``0`` sizes the first window
        of each communicator from its first payload; ``None`` consults
        ``REPRO_SPMD_WINDOW_SLOT`` (default adaptive).
    sanitize:
        SPMD sanitizer level handed to the collective windows (level 2
        enables their per-slot generation checks); ``None`` consults
        ``REPRO_SANITIZE``.  The executor backend resolves the level
        once per run and passes it explicitly, so pooled workers never
        depend on environment inheritance at fork time.
    faults:
        Optional :class:`repro.faults.FaultInjector` for this rank:
        ``put``/``get`` fire the ``send``/``recv`` sites (``send`` fires
        *after* segments are staged, so a crash fault there exercises
        the leaked-segment audit), and windows inherit it for the
        ``fence`` site.
    status:
        Optional :class:`repro.faults.StatusBoard`: blocking receives
        and window fences consult it when the abort event trips, so a
        recorded rank death surfaces as :class:`RankDeadError` (naming
        the dead rank and its last collective) instead of a generic
        :class:`DeadlockError`.
    """

    #: Sends already copy into a fresh segment (or a pickle), so the
    #: communicator can skip its defensive pre-send copy.
    copies_on_send = True

    def __init__(
        self,
        rank: int,
        inboxes,
        abort_event,
        timeout: float = 60.0,
        run_seq: int = 0,
        windows: bool | None = None,
        window_slot: int | None = None,
        sanitize: int | None = None,
        faults=None,
        status=None,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._rank = rank
        self._inboxes = inboxes
        self._abort = abort_event
        self._run_seq = run_seq
        self.faults = faults
        self.status = status
        self._stash: dict[Hashable, deque[Any]] = {}
        self._windows: list[CollectiveWindow] = []
        if windows is None:
            windows = bool(default_for("windows"))
        self.windows_enabled = windows
        if sanitize is None:
            sanitize = int(default_for("sanitize"))
        self.sanitize = sanitize
        if window_slot is None:
            window_slot = int(default_for("window_slot"))
        if window_slot < 0:
            raise ValueError(
                f"window_slot must be non-negative, got {window_slot}"
            )
        self._window_slot = window_slot

    @property
    def arena(self) -> SegmentArena:
        return process_arena()

    def put(self, key: Hashable, payload: Any, dst: int | None = None) -> None:
        if dst is None:
            raise ValueError(
                "ProcessTransport.put requires the destination world rank"
            )
        arena = self.arena
        segments: list[shared_memory.SharedMemory] = []
        try:
            blob = pickle.dumps(
                (self._run_seq, key, encode_payload(payload, segments, arena))
            )
            if self.faults is not None:
                # After staging, before the queue put: a crash fault here
                # dies with segments parked in /dev/shm — the exact leak
                # the crash audit must reclaim.
                self.faults.fire("send")
        except Exception:
            for shm in segments:
                arena.recycle(shm)
            raise
        # Ownership of the segments now rides with the message; dropping
        # our SharedMemory handles closes this process's mappings only.
        self._inboxes[dst].put(blob)

    def get(self, key: Hashable) -> Any:
        if self.faults is not None:
            self.faults.fire("recv")
        box = self._stash.get(key)
        if box:
            payload = box.popleft()
            if not box:
                del self._stash[key]
            return payload
        inbox = self._inboxes[self._rank]
        deadline = time.monotonic() + self.timeout
        interval = _POLL_MIN_INTERVAL
        while True:
            resources.check_deadline(f"receive on {key!r}")
            if self._abort.is_set():
                exc = self._dead_sibling(f"waiting on {key!r}")
                if exc is not None:
                    raise exc
                raise DeadlockError(
                    f"transport aborted while waiting on {key!r}: "
                    f"a sibling rank failed"
                )
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                exc = self._dead_sibling(f"waiting on {key!r}")
                if exc is not None:
                    raise exc
                raise DeadlockError(
                    f"receive on {key!r} timed out after "
                    f"{self.timeout:g}s (likely mismatched send/recv or "
                    f"collective ordering)"
                )
            try:
                blob = inbox.get(timeout=min(interval, remaining))
            except queue_mod.Empty:
                interval = min(interval * 2, _POLL_MAX_INTERVAL)
                continue
            # Any arrival restarts the window, mirroring the thread
            # transport, whose cond.wait timeout restarts on every notify:
            # the timeout detects a *silent* transport, not a slow peer.
            deadline = time.monotonic() + self.timeout
            interval = _POLL_MIN_INTERVAL
            msg_seq, msg_key, encoded = pickle.loads(blob)
            if msg_seq != self._run_seq:
                # Straggler from a previous pooled run: reclaim and drop.
                release_payload(encoded)
                continue
            payload = decode_payload(encoded, self.arena)
            if msg_key == key:
                return payload
            self._stash.setdefault(msg_key, deque()).append(payload)

    def abort(self, exc: BaseException) -> None:
        self._abort.set()

    def aborted(self) -> bool:
        return self._abort.is_set()

    def _dead_sibling(self, doing: str):
        """RankDeadError when the status board records a death, else None."""
        if self.status is None:
            return None
        return self.status.dead_error(doing)

    def note_collective(self, op: str, seq: int) -> None:
        """Record the collective this rank is entering on the status board
        (its last-op context, shown in RankDeadError post-mortems)."""
        if self.status is not None:
            self.status.note(self._rank, op, seq)

    def pending(self) -> int:
        """Undelivered messages already drained into this rank's stash.

        Messages still in flight inside the OS queue are not visible; the
        executor separately drains and reclaims those at the end of a run.
        """
        return sum(len(box) for box in self._stash.values())

    # -- collective windows --------------------------------------------------

    def window_slot(self, needed: int) -> int:
        """Slot size (bytes) for a window that must hold ``needed`` bytes.

        Adaptive by default: the bucket covering ``needed`` (at least one
        page), so the first exchange sizes the window.  A fixed
        ``window_slot`` knob raises the floor instead.
        """
        base = self._window_slot if self._window_slot > 0 else WINDOW_MIN_SLOT
        return window_slot_for(needed, base)

    def create_window(
        self, size: int, index: int, slot_bytes: int, matrix: bool = False
    ) -> CollectiveWindow:
        cls = MatrixWindow if matrix else CollectiveWindow
        win = cls.create(
            size, index, slot_bytes, self._abort, self.timeout,
            sanitize=self.sanitize, faults=self.faults, status=self.status,
        )
        self._windows.append(win)
        return win

    def attach_window(
        self,
        name: str,
        size: int,
        index: int,
        slot_bytes: int,
        matrix: bool = False,
    ) -> CollectiveWindow:
        cls = MatrixWindow if matrix else CollectiveWindow
        win = cls.attach(
            name, size, index, slot_bytes, self._abort, self.timeout,
            sanitize=self.sanitize, faults=self.faults, status=self.status,
        )
        self._windows.append(win)
        return win

    def release_window(self, win: CollectiveWindow) -> None:
        """Close (and, for the owner, unlink) a window grown out of use."""
        win.close()
        try:
            self._windows.remove(win)
        except ValueError:  # pragma: no cover - double release
            pass

    # -- end-of-run hygiene --------------------------------------------------

    def end_run(self) -> None:
        """Release per-run resources: stashed leases and open windows.

        Called by the executor worker when the rank function finishes
        (successfully or not).  The arena itself survives — pooled workers
        keep it warm across runs.
        """
        for box in self._stash.values():
            for payload in box:
                _release_views(payload)
        self._stash.clear()
        for win in self._windows:
            win.close()
        self._windows.clear()


def _release_views(obj: Any) -> None:
    """Release every lease referenced by an undelivered decoded payload."""
    if isinstance(obj, ShmArrayView):
        obj.release()
    elif isinstance(obj, (list, tuple)):
        for x in obj:
            _release_views(x)
    elif isinstance(obj, dict):
        for x in obj.values():
            _release_views(x)
