"""Reduction operators for the simulated MPI collectives.

Operators work on NumPy arrays (elementwise) and on Python scalars.  They
are associative, and the collectives apply them in a fixed rank order so
floating-point results are deterministic run to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """A named associative binary operator used by reduce/allreduce.

    ``fn(acc, value)`` must return the reduction of its two arguments and
    must not mutate either argument.
    """

    name: str
    fn: Callable[[Any, Any], Any]

    def __call__(self, acc: Any, value: Any) -> Any:
        return self.fn(acc, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReduceOp({self.name})"


def _sum(a: Any, b: Any) -> Any:
    return np.add(a, b) if isinstance(a, np.ndarray) else a + b


def _prod(a: Any, b: Any) -> Any:
    return np.multiply(a, b) if isinstance(a, np.ndarray) else a * b


def _max(a: Any, b: Any) -> Any:
    return np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b)


def _min(a: Any, b: Any) -> Any:
    return np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b)


SUM = ReduceOp("SUM", _sum)
PROD = ReduceOp("PROD", _prod)
MAX = ReduceOp("MAX", _max)
MIN = ReduceOp("MIN", _min)
