"""Pluggable executor backends for :func:`repro.mpi.run_spmd`.

A backend decides *how* the N ranks of an SPMD run execute:

* :class:`ThreadBackend` (``"thread"``) — ranks are Python threads sharing
  one :class:`~repro.mpi.transport.ThreadTransport` and one
  :class:`~repro.mpi.ledger.CostLedger`.  NumPy releases the GIL inside
  BLAS so local linear algebra overlaps, but all pure-Python work is
  interleaved.  Cheap to launch; the default.
* :class:`ProcessBackend` (``"process"``) — ranks are forked
  ``multiprocessing`` processes exchanging ndarrays through
  :class:`~repro.mpi.process_transport.ProcessTransport` (headers pickled,
  payload bytes through POSIX shared memory).  Pure-Python rank code runs
  genuinely in parallel on multi-core hardware, which is what the paper's
  strong/weak-scaling experiments (Fig. 9) actually measure.

Both backends present identical semantics — same collectives, same
deterministic reduction order, same poisoning/fail-fast behavior on rank
error, same deadlock timeout, same cost-ledger contents — and are held to
that by one shared conformance suite (``tests/mpi/test_backends.py``).

Select a backend per call (``run_spmd(..., backend="process")``) or
globally via the ``REPRO_SPMD_BACKEND`` environment variable.

Process-backend restrictions (it crosses a real process boundary):

* rank functions and arguments reach the children by ``fork``, so closures
  and lambdas work, but mutations they make to parent objects stay in the
  child;
* per-rank return values come back through a result queue and must be
  picklable — a rank returning an unpicklable value fails that rank.
"""

from __future__ import annotations

import abc
import os
import pickle
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mpi.comm import Communicator
from repro.mpi.errors import DeadlockError, SpmdError
from repro.mpi.ledger import CostLedger
from repro.mpi.process_transport import ProcessTransport, release_payload
from repro.mpi.transport import ThreadTransport
from repro.perfmodel.machine import MachineSpec

#: Environment variable consulted when ``run_spmd`` gets no ``backend=``.
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"

#: Seconds the parent keeps waiting for remaining rank reports after a
#: failure has poisoned the run (bounds cleanup, not healthy execution).
_DRAIN_GRACE = 30.0

#: Seconds a cleanly-exited child's result may stay in flight in the
#: result queue before the parent declares the rank dead-without-report.
_EXIT_REPORT_GRACE = 5.0


@dataclass
class SpmdResult:
    """Return values of all ranks plus the run's cost ledger."""

    values: list[Any]
    ledger: CostLedger

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def modeled_time(self) -> float:
        return self.ledger.modeled_time()


def raise_spmd_failures(failures: dict[int, BaseException]) -> None:
    """Raise :class:`SpmdError` for a run's failures, if any.

    Deadlock cascades: report only the original failures, not the
    DeadlockErrors induced on innocent ranks by the poisoned transport.
    """
    if not failures:
        return
    primary = {
        rank: exc
        for rank, exc in failures.items()
        if not isinstance(exc, DeadlockError)
    }
    raise SpmdError(primary or failures)


class ExecutorBackend(abc.ABC):
    """How an SPMD run turns N rank programs into N executions."""

    #: Registry key and the value accepted by ``REPRO_SPMD_BACKEND``.
    name: str

    @abc.abstractmethod
    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
    ) -> SpmdResult:
        """Execute ``fn(comm, *args[, *rank_args[rank]])`` on every rank."""


class ThreadBackend(ExecutorBackend):
    """Ranks as threads in this process (shared transport and ledger)."""

    name = "thread"

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
    ) -> SpmdResult:
        transport = ThreadTransport(timeout=timeout)
        ledger = CostLedger(n_ranks, machine)
        values: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            comm = Communicator(
                transport, ledger, "world", tuple(range(n_ranks)), rank
            )
            try:
                extra = rank_args[rank] if rank_args is not None else ()
                values[rank] = fn(comm, *args, *extra)
            except BaseException as exc:  # noqa: BLE001 - reraised via SpmdError
                with failures_lock:
                    failures[rank] = exc
                transport.abort(exc)

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
            for rank in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        raise_spmd_failures(failures)
        return SpmdResult(values=values, ledger=ledger)


def _process_worker(
    rank: int,
    n_ranks: int,
    fn: Callable[..., Any],
    args: tuple,
    rank_args: Sequence[tuple] | None,
    machine: MachineSpec,
    timeout: float,
    inboxes,
    result_queue,
    abort_event,
) -> None:
    """Child-process body: run one rank, report (value, failure, costs)."""
    transport = ProcessTransport(rank, inboxes, abort_event, timeout=timeout)
    ledger = CostLedger(n_ranks, machine)
    comm = Communicator(transport, ledger, "world", tuple(range(n_ranks)), rank)
    value: Any = None
    failure: BaseException | None = None
    try:
        extra = rank_args[rank] if rank_args is not None else ()
        value = fn(comm, *args, *extra)
    except BaseException as exc:  # noqa: BLE001 - reraised via SpmdError
        failure = exc
        transport.abort(exc)
    costs = ledger.rank_costs(rank)
    # Pre-pickle in the worker: a pickling error inside the queue's feeder
    # thread would silently drop the report and wedge the parent.
    try:
        blob = pickle.dumps((rank, value, failure, costs))
    except Exception as exc:
        if failure is None:
            failure = TypeError(
                f"rank {rank} returned a value the process backend cannot "
                f"send back ({exc}); return picklable data or use "
                f"backend='thread'"
            )
        else:
            failure = RuntimeError(
                f"rank {rank} raised an unpicklable exception: {failure!r}"
            )
        blob = pickle.dumps((rank, None, failure, costs))
    result_queue.put(blob)


class ProcessBackend(ExecutorBackend):
    """Ranks as forked processes with shared-memory message payloads."""

    name = "process"

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
    ) -> SpmdResult:
        import multiprocessing
        from multiprocessing import resource_tracker

        # Start the shared-memory resource tracker before forking so every
        # child inherits the same tracker process; otherwise a segment
        # registered by the sending child and unlinked by the receiving
        # child looks "leaked" to the sender's private tracker.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass

        # fork keeps closures working (fn and args are inherited, never
        # pickled) and makes launches cheap; the seed toolchain is
        # Linux-only so fork is always available.
        ctx = multiprocessing.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(n_ranks)]
        result_queue = ctx.Queue()
        abort_event = ctx.Event()
        procs = [
            ctx.Process(
                target=_process_worker,
                args=(
                    rank,
                    n_ranks,
                    fn,
                    args,
                    rank_args,
                    machine,
                    timeout,
                    inboxes,
                    result_queue,
                    abort_event,
                ),
                name=f"spmd-rank-{rank}",
                daemon=True,
            )
            for rank in range(n_ranks)
        ]
        for p in procs:
            p.start()

        values: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        ledger = CostLedger(n_ranks, machine)
        pending = set(range(n_ranks))
        # No cap on healthy execution: like the thread backend's join, the
        # parent waits as long as ranks are alive and making progress —
        # deadlocks are detected *inside* ranks by the transport timeout.
        # Only once the run is poisoned does a drain deadline bound how
        # long we wait for the remaining reports.
        drain_deadline: float | None = None
        exited_at: dict[int, float] = {}
        while pending:
            try:
                blob = result_queue.get(timeout=0.1)
            except queue_mod.Empty:
                for rank in sorted(pending):
                    p = procs[rank]
                    if p.is_alive() or p.exitcode is None:
                        continue
                    if p.exitcode != 0:
                        # Died without reporting (segfault, kill): poison
                        # the siblings and synthesize the failure.
                        abort_event.set()
                        failures[rank] = RuntimeError(
                            f"rank {rank} died with exit code {p.exitcode} "
                            f"before reporting a result"
                        )
                        pending.discard(rank)
                        continue
                    # Exited cleanly but no report yet: the result may
                    # still be in the queue's pipe, so allow a short
                    # grace before declaring the rank lost (os._exit in
                    # rank code, a native library pulling the plug...).
                    first_seen = exited_at.setdefault(rank, time.monotonic())
                    if time.monotonic() - first_seen > _EXIT_REPORT_GRACE:
                        abort_event.set()
                        failures[rank] = RuntimeError(
                            f"rank {rank} exited (code 0) without "
                            f"reporting a result"
                        )
                        pending.discard(rank)
                if drain_deadline is None and (
                    failures or abort_event.is_set()
                ):
                    drain_deadline = time.monotonic() + _DRAIN_GRACE
                if drain_deadline is not None and (
                    time.monotonic() > drain_deadline
                ):
                    for rank in sorted(pending):
                        failures[rank] = DeadlockError(
                            f"rank {rank} did not report within "
                            f"{_DRAIN_GRACE:g}s of the run being poisoned"
                        )
                    pending.clear()
                continue
            rank, value, failure, costs = pickle.loads(blob)
            pending.discard(rank)
            ledger.install_rank(rank, costs)
            if failure is not None:
                failures[rank] = failure
            else:
                values[rank] = value

        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - wedged child
                p.terminate()
                p.join()
        self._reclaim(inboxes)
        raise_spmd_failures(failures)
        return SpmdResult(values=values, ledger=ledger)

    @staticmethod
    def _reclaim(inboxes) -> None:
        """Drain undelivered messages and unlink their shm segments."""
        for inbox in inboxes:
            while True:
                try:
                    blob = inbox.get_nowait()
                except queue_mod.Empty:
                    break
                try:
                    _key, encoded = pickle.loads(blob)
                    release_payload(encoded)
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
            inbox.close()
            inbox.join_thread()


_BACKENDS: dict[str, type[ExecutorBackend]] = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, alphabetically."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(backend: str | ExecutorBackend | None) -> ExecutorBackend:
    """Turn a ``backend=`` argument into a backend instance.

    ``None`` falls back to the ``REPRO_SPMD_BACKEND`` environment variable,
    then to ``"thread"``.  Instances pass through unchanged.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    name = backend if backend is not None else os.environ.get(
        BACKEND_ENV_VAR, ThreadBackend.name
    )
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown SPMD backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls()
