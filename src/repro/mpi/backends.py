"""Pluggable executor backends for :func:`repro.mpi.run_spmd`.

A backend decides *how* the N ranks of an SPMD run execute:

* :class:`ThreadBackend` (``"thread"``) — ranks are Python threads sharing
  one :class:`~repro.mpi.transport.ThreadTransport` and one
  :class:`~repro.mpi.ledger.CostLedger`.  NumPy releases the GIL inside
  BLAS so local linear algebra overlaps, but all pure-Python work is
  interleaved.  Cheap to launch; the default.
* :class:`ProcessBackend` (``"process"``) — ranks are forked
  ``multiprocessing`` processes exchanging ndarrays through
  :class:`~repro.mpi.process_transport.ProcessTransport` (headers pickled,
  payload bytes through POSIX shared memory).  Pure-Python rank code runs
  genuinely in parallel on multi-core hardware, which is what the paper's
  strong/weak-scaling experiments (Fig. 9) actually measure.

Both backends present identical semantics — same collectives (blocking
and non-blocking: the process backend completes ``ireduce``-family
requests over double-buffered shm windows, the thread backend over the
point-to-point relay, with identical results and charges), same
deterministic reduction order, same poisoning/fail-fast behavior on rank
error, same deadlock timeout, same cost-ledger contents — and are held to
that by one shared conformance suite (``tests/mpi/test_backends.py``).

Select a backend per call (``run_spmd(..., backend="process")``) or
globally via the ``REPRO_SPMD_BACKEND`` environment variable.

Process-backend restrictions (it crosses a real process boundary):

* rank functions and arguments reach the children by pickle (warm pool)
  or by ``fork`` (fallback), so closures and lambdas work, but mutations
  they make to parent objects stay in the child;
* per-rank return values come back through a result queue (one per rank,
  so a crashed sibling can never wedge a survivor's report) and must be
  picklable — a rank returning an unpicklable value fails that rank;
* large received arrays are *read-only* zero-copy views
  (:class:`~repro.mpi.process_transport.ShmArrayView`) backed by shared
  memory — unlike the thread backend's private copies, mutating one
  raises; copy (``np.array(view)``) before writing.

Persistent rank pool
--------------------

Forking one interpreter per rank per ``run_spmd`` call dominates short
runs — a benchmark sweep that launches hundreds of SPMD programs spends
most of its wall-clock on ``fork`` and queue setup, not on the kernels it
measures.  The process backend therefore keeps a *pool* of rank workers
warm:

* Pools are keyed by world size and created lazily on the first process
  run of that size (``_RankPool``).  Workers block on a per-rank task
  queue; dispatching a run costs two pickles and a queue hop per rank
  instead of a fork.
* A task carries ``(fn, args, rank_args, machine, timeout)``.  Large
  ndarray arguments are staged through the shared-memory arena, not the
  queue pipe.  The rank function itself is pickled *by reference*, so
  closures and lambdas cannot ride the pool — those runs transparently
  fall back to fork-per-run (fork inherits closures for free).
* Each run gets a fresh ``run_seq``; stragglers from an earlier run that
  are still in an inbox are dropped (and their segments reclaimed) by the
  transport, so runs never see each other's messages.
* Any failure — a raised rank exception, a worker death, a deadlock —
  *invalidates* the pool: the run's error is reported exactly as in fork
  mode, and the pool is torn down so the next run starts from clean
  workers.
* Pools are torn down at interpreter exit (``atexit``) or explicitly via
  :func:`shutdown_worker_pools`; teardown sends a sentinel so workers
  unlink their pooled shared-memory segments before exiting.

Disable pooling with ``REPRO_SPMD_POOL=0`` (or
``ProcessBackend(pool=False)``) to get fork-per-run unconditionally.
"""

from __future__ import annotations

import abc
import atexit
import os
import pickle
import queue as queue_mod
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro import resources as resources_mod
from repro.analysis.sanitizer import Sanitizer
from repro.config import RuntimeConfig, default_for, set_active_config
from repro.faults import FaultInjector, FaultSpec, StatusBoard, describe_exitcode
from repro.mpi.comm import Communicator
from repro.mpi.errors import DeadlockError, RankDeadError, SpmdError
from repro.mpi.ledger import CostLedger
from repro.resources import (
    ResourceBoard,
    ResourceReport,
    admission_controller,
)
from repro.mpi.process_transport import (
    ProcessTransport,
    decode_borrowed,
    encode_payload,
    process_arena,
    reap_stale_segments,
    release_payload,
)
from repro.mpi.transport import ThreadTransport
from repro.perfmodel.machine import MachineSpec

#: Environment variable consulted when ``run_spmd`` gets no ``backend=``.
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"

#: Environment switch: ``0`` disables the persistent rank pool.
POOL_ENV_VAR = "REPRO_SPMD_POOL"

#: Seconds the parent keeps waiting for remaining rank reports after a
#: failure has poisoned the run (bounds cleanup, not healthy execution).
_DRAIN_GRACE = 30.0

#: Seconds a cleanly-exited child's result may stay in flight in the
#: result queue before the parent declares the rank dead-without-report.
_EXIT_REPORT_GRACE = 5.0

#: Seconds to wait for pool workers to honor the shutdown sentinel before
#: terminating them.
_POOL_SHUTDOWN_GRACE = 5.0


class _TaskLoadError(RuntimeError):
    """A pool worker could not deserialize a dispatched task.

    Happens when the rank function pickles by reference in the parent but
    does not resolve in a worker forked before it was defined (fresh
    definitions in a REPL).  When *every* rank reports this, no user code
    ran, so the executor falls back to fork-per-run — fork inherits the
    definition for free — instead of failing the run.
    """


@dataclass
class SpmdResult:
    """Return values of all ranks plus the run's cost ledger.

    ``resources`` is the run's :class:`~repro.resources.ResourceReport`
    (degradation events, byte totals, admission wait); backends fold the
    per-rank governor summaries into it, and ``run_spmd`` fills in the
    admission-control fields.
    """

    values: list[Any]
    ledger: CostLedger
    resources: ResourceReport | None = None

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, rank: int) -> Any:
        return self.values[rank]

    @property
    def modeled_time(self) -> float:
        return self.ledger.modeled_time()


def raise_spmd_failures(failures: dict[int, BaseException]) -> None:
    """Raise :class:`SpmdError` for a run's failures, if any.

    Failure cascades: report only the original failures, not the
    DeadlockErrors induced on innocent ranks by the poisoned transport,
    nor the RankDeadErrors surviving ranks raise about *somebody else's*
    death (the dead rank's own synthesized RankDeadError — where
    ``dead_rank`` equals the reporting rank — stays primary).
    """
    if not failures:
        return
    primary = {
        rank: exc
        for rank, exc in failures.items()
        if not isinstance(exc, DeadlockError)
        and not (isinstance(exc, RankDeadError) and exc.dead_rank != rank)
    }
    raise SpmdError(primary or failures)


def _rank_dead_error(
    rank: int, exitcode: int | None, board: StatusBoard | None
) -> RankDeadError:
    """The parent-side failure for a child that died without reporting."""
    msg = (
        f"rank {rank} died ({describe_exitcode(exitcode)}) "
        f"before reporting a result"
    )
    context = board.last_context(rank) if board is not None else None
    if context:
        msg += f" (last collective: {context})"
    return RankDeadError(msg, dead_rank=rank, exitcode=exitcode)


class ExecutorBackend(abc.ABC):
    """How an SPMD run turns N rank programs into N executions."""

    #: Registry key and the value accepted by ``REPRO_SPMD_BACKEND``.
    name: str

    @abc.abstractmethod
    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
        sanitize: int = 0,
        faults: FaultSpec | None = None,
        attempt: int = 1,
        config: RuntimeConfig | None = None,
    ) -> SpmdResult:
        """Execute ``fn(comm, *args[, *rank_args[rank]])`` on every rank.

        ``sanitize`` is the resolved SPMD-sanitizer level (see
        :mod:`repro.analysis.sanitizer`); backends build one
        :class:`~repro.analysis.sanitizer.Sanitizer` per rank at levels
        >= 1, finalize it after a successful rank return, and annotate
        deadlock timeouts with the rank's last collective.

        ``faults`` is the resolved fault-injection spec (``None`` when
        chaos is off) and ``attempt`` the 1-based launch attempt number
        (advanced by ``run_spmd``'s retry loop): backends build one
        :class:`~repro.faults.FaultInjector` per rank from them and fire
        the ``dispatch`` site before the rank function runs.

        ``config`` is the run's resolved
        :class:`~repro.config.RuntimeConfig`.  ``run_spmd`` installs it
        in the launching process (thread ranks and fork-per-run children
        see it directly); the process backend additionally ships it on
        the run dispatch so *pooled* workers — forked long before this
        run — install the same configuration around the rank function.
        """


class ThreadBackend(ExecutorBackend):
    """Ranks as threads in this process (shared transport and ledger)."""

    name = "thread"

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
        sanitize: int = 0,
        faults: FaultSpec | None = None,
        attempt: int = 1,
        config: RuntimeConfig | None = None,
    ) -> SpmdResult:
        # Thread ranks share the launching process, where run_spmd has
        # already installed `config`; nothing to ship.
        transport = ThreadTransport(timeout=timeout)
        ledger = CostLedger(n_ranks, machine)
        values: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        failures_lock = threading.Lock()

        def worker(rank: int) -> None:
            sanitizer = (
                Sanitizer(level=sanitize, world_rank=rank) if sanitize else None
            )
            # Thread ranks share the parent process, so kind=crash
            # degrades to FaultInjectedError (hard_crash=False) — a
            # SIGKILL would take the whole test runner down.
            injector = (
                FaultInjector(faults, rank, attempt, hard_crash=False)
                if faults is not None
                else None
            )
            comm = Communicator(
                transport,
                ledger,
                "world",
                tuple(range(n_ranks)),
                rank,
                sanitizer=sanitizer,
                faults=injector,
            )
            try:
                if injector is not None:
                    injector.fire("dispatch")
                extra = rank_args[rank] if rank_args is not None else ()
                values[rank] = fn(comm, *args, *extra)
                if sanitizer is not None:
                    sanitizer.finalize()
            except BaseException as exc:  # noqa: BLE001 - reraised via SpmdError
                if sanitizer is not None and isinstance(exc, DeadlockError):
                    sanitizer.annotate(exc)
                with failures_lock:
                    failures[rank] = exc
                transport.abort(exc)

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"spmd-rank-{rank}")
            for rank in range(n_ranks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        raise_spmd_failures(failures)
        # Thread ranks share one address space: no shm is allocated, so
        # the report is empty by construction (never degraded).
        return SpmdResult(
            values=values, ledger=ledger, resources=ResourceReport()
        )


def _safe_report_blob(
    run_seq: int,
    rank: int,
    value: Any,
    failure: BaseException | None,
    costs,
    rsummary: dict | None = None,
) -> bytes:
    """Pickle a rank report, degrading gracefully on unpicklable contents.

    Pre-pickling in the worker matters: a pickling error inside the
    queue's feeder thread would silently drop the report and wedge the
    parent.  ``rsummary`` is the rank governor's per-run resource summary
    (plain dict, always picklable).
    """
    try:
        return pickle.dumps((run_seq, rank, value, failure, costs, rsummary))
    except Exception as exc:
        if failure is None:
            failure = TypeError(
                f"rank {rank} returned a value the process backend cannot "
                f"send back ({exc}); return picklable data or use "
                f"backend='thread'"
            )
        else:
            failure = RuntimeError(
                f"rank {rank} raised an unpicklable exception: {failure!r}"
            )
        return pickle.dumps((run_seq, rank, None, failure, costs, rsummary))


def _drain_ready_reports(
    queues: dict[int, Any], timeout: float
) -> list[bytes]:
    """Wait for report traffic on per-rank result queues; drain what's ready.

    Rank reports travel one ``multiprocessing.Queue`` *per rank*, never a
    shared one: a queue shared by several writer processes serializes
    them through one shared write semaphore, and a rank SIGKILLed at the
    wrong instant (between its feeder thread's pipe write and the lock
    release — a multi-millisecond window, since the release needs the
    GIL back) dies holding it, wedging every survivor's report until the
    drain deadline.  With per-rank queues each worker is the sole writer
    of its own pipe, so a crash can only ever lose that rank's *own*
    report — which the exit monitor replaces with a synthesized
    :class:`RankDeadError` anyway.

    Blocks up to ``timeout`` for the first readable queue (event-driven
    via ``multiprocessing.connection.wait`` on the reader pipes — the
    parent keeps the write ends open, so readiness always means data,
    never EOF), then drains every ready queue without blocking.  Returns
    the raw blobs, possibly from several ranks; empty on timeout.
    """
    from multiprocessing.connection import wait as _wait_readers

    readers = {q._reader: q for q in queues.values()}
    try:
        ready = _wait_readers(list(readers), timeout=timeout)
    except OSError:  # pragma: no cover - torn-down handle at shutdown
        return []
    blobs: list[bytes] = []
    for reader in ready:
        q = readers[reader]
        while True:
            try:
                blobs.append(q.get_nowait())
            except (queue_mod.Empty, OSError, ValueError):
                break
    return blobs


def _run_one_rank(
    rank: int,
    n_ranks: int,
    fn: Callable[..., Any],
    args: tuple,
    extra: tuple,
    machine: MachineSpec,
    timeout: float,
    inboxes,
    abort_event,
    run_seq: int,
    transport_opts: dict | None = None,
) -> tuple[Any, BaseException | None, Any, dict | None]:
    """Execute one rank against a fresh transport; always cleans up."""
    topts = dict(transport_opts or {})
    # The run's resolved RuntimeConfig is installed around everything
    # rank-side — pooled workers were forked long before this run, so
    # the dispatch payload (not the environment) is the source of truth.
    config: RuntimeConfig | None = topts.pop("config", None)
    previous_config = set_active_config(config) if config is not None else None
    # The run deadline ships as an absolute monotonic timestamp (fork
    # children share the parent's clock), so every rank — and every
    # retry attempt — counts down the same wall-clock budget.
    deadline = topts.pop("deadline", None)
    previous_deadline = resources_mod.set_active_deadline(deadline)
    try:
        # Fault-tolerance options ride the dispatch as picklable primitives;
        # the live objects (injector, board) are built rank-side here.
        spec: FaultSpec | None = topts.pop("faults", None)
        attempt: int = topts.pop("attempt", 1)
        board_name: str | None = topts.pop("status", None)
        rboard_name: str | None = topts.pop("rboard", None)
        shm_budget: int = topts.pop("shm_budget", 0)
        injector = (
            FaultInjector(spec, rank, attempt, hard_crash=True)
            if spec is not None
            else None
        )
        board = None
        if board_name is not None:
            try:
                board = StatusBoard.attach(board_name, n_ranks)
            except FileNotFoundError:  # pragma: no cover - board already audited
                board = None
        rboard = None
        if rboard_name is not None:
            try:
                rboard = ResourceBoard.attach(rboard_name, n_ranks + 1)
            except FileNotFoundError:  # pragma: no cover - board already audited
                rboard = None
        gov = resources_mod.governor()
        gov.configure(
            budget=shm_budget, board=rboard, slot=rank, faults=injector
        )
        try:
            transport = ProcessTransport(
                rank, inboxes, abort_event, timeout=timeout, run_seq=run_seq,
                faults=injector, status=board, **topts,
            )
            ledger = CostLedger(n_ranks, machine)
            sanitizer = (
                Sanitizer(level=transport.sanitize, world_rank=rank)
                if transport.sanitize
                else None
            )
            comm = Communicator(
                transport,
                ledger,
                "world",
                tuple(range(n_ranks)),
                rank,
                sanitizer=sanitizer,
                faults=injector,
            )
            value: Any = None
            failure: BaseException | None = None
            try:
                if board is not None:
                    board.mark_running(rank, os.getpid())
                if injector is not None:
                    injector.fire("dispatch")
                value = fn(comm, *args, *extra)
                if sanitizer is not None:
                    sanitizer.finalize()
                if board is not None:
                    board.mark_done(rank)
            except BaseException as exc:  # noqa: BLE001 - reraised via SpmdError
                if sanitizer is not None and isinstance(exc, DeadlockError):
                    sanitizer.annotate(exc)
                failure = exc
                transport.abort(exc)
            finally:
                try:
                    transport.end_run()
                finally:
                    if board is not None:
                        board.close()
            costs = ledger.rank_costs(rank)
        finally:
            rsummary = gov.deconfigure()
            if rboard is not None:
                rboard.close()
        return value, failure, costs, rsummary
    finally:
        resources_mod.set_active_deadline(previous_deadline)
        if config is not None:
            set_active_config(previous_config)


def _process_worker(
    rank: int,
    n_ranks: int,
    fn: Callable[..., Any],
    args: tuple,
    rank_args: Sequence[tuple] | None,
    machine: MachineSpec,
    timeout: float,
    inboxes,
    result_queue,
    abort_event,
    transport_opts: dict | None = None,
) -> None:
    """Fork-mode child body: run one rank, report (value, failure, costs)."""
    extra = rank_args[rank] if rank_args is not None else ()
    value, failure, costs, rsummary = _run_one_rank(
        rank, n_ranks, fn, args, extra, machine, timeout, inboxes,
        abort_event, run_seq=0, transport_opts=transport_opts,
    )
    blob = _safe_report_blob(0, rank, value, failure, costs, rsummary)
    # Unlink pooled segments before reporting: once the parent has every
    # report it may immediately check /dev/shm hygiene.
    process_arena().teardown()
    result_queue.put(blob)


def _pool_worker(
    rank: int,
    n_ranks: int,
    task_queue,
    result_queue,
    inboxes,
    abort_event,
) -> None:
    """Persistent pool worker: loop over dispatched runs until the sentinel."""
    try:
        while True:
            item = task_queue.get()
            if item is None:
                break
            if item[0] == "ping":
                # Pool health check: answer with a pong carrying the
                # probe token.  The collect loops ignore pong blobs.
                # When a sibling died, the probe also asks survivors to
                # flush their arenas: pooled segments adopted from the
                # dead rank were unlinked by the crash audit, and
                # reusing such a mapping would break the next receiver's
                # attach-by-name.
                if item[2]:
                    process_arena().teardown()
                result_queue.put(pickle.dumps(("pong", item[1], rank)))
                continue
            run_seq, blob = item
            value: Any = None
            failure: BaseException | None = None
            costs = None
            rsummary: dict | None = None
            try:
                # Unpickle here, not in Queue.get(): the rank function is
                # pickled by reference and may not resolve in a worker
                # forked before it was defined — that must fail the rank,
                # not crash the worker inside the queue machinery.
                # Arguments are staged once in the parent's arena and
                # borrowed: each worker copies them out, so rank code
                # gets private writable arrays, matching the
                # copy-on-write semantics of the fork path.
                fn, args, extra, machine, timeout, topts = decode_borrowed(
                    pickle.loads(blob)
                )
            except BaseException as exc:  # noqa: BLE001
                failure = _TaskLoadError(
                    f"rank {rank} could not load the dispatched task: {exc!r}"
                )
                abort_event.set()
            else:
                value, failure, costs, rsummary = _run_one_rank(
                    rank, n_ranks, fn, args, extra, machine, timeout,
                    inboxes, abort_event, run_seq, transport_opts=topts,
                )
            result_queue.put(
                _safe_report_blob(run_seq, rank, value, failure, costs,
                                  rsummary)
            )
            # Drop the report's references before the next item, and
            # break the exception<->frame reference cycle: traceback
            # frames pin shm-backed views, and cyclic garbage finalizes
            # in arbitrary order — a SharedMemory handle collected
            # before its exporting ndarray spews BufferError from
            # __del__.  Refcount teardown releases views first.
            if failure is not None:
                failure.__traceback__ = None
                failure.__context__ = None
                failure.__cause__ = None
            del value, failure, costs, rsummary
    finally:
        process_arena().teardown()


class _RankPool:
    """A warm set of rank worker processes for one world size."""

    def __init__(self, n_ranks: int):
        import multiprocessing

        self._ctx = multiprocessing.get_context("fork")
        self.n_ranks = n_ranks
        self.run_seq = 0
        self.broken = False
        self.needs_recycle = False
        self.busy = False
        self.last_used = time.monotonic()
        self.inboxes = [self._ctx.Queue() for _ in range(n_ranks)]
        self.task_queues = [self._ctx.Queue() for _ in range(n_ranks)]
        # One result queue per rank (see _drain_ready_reports): a shared
        # queue's write lock is a single point of failure under SIGKILL.
        self.result_queues = [self._ctx.Queue() for _ in range(n_ranks)]
        self.abort_event = self._ctx.Event()
        self.staged: list = []  # arena segments loaned to the active run
        # Shared liveness/death board: children stamp their pid and last
        # collective, the parent's exit monitor records deaths on it so
        # survivors raise RankDeadError instead of deadlock-timing out.
        self.board = StatusBoard.create(n_ranks)
        # Shared live-byte ledger: rank slots plus one parent slot, so
        # the shm budget is enforced world-wide.  Registered with the
        # admission controller so warm-pool free lists count against the
        # budget between runs (and can be recycled back under pressure).
        self.rboard = ResourceBoard.create(n_ranks + 1)
        admission_controller().register_usage_source(self.rboard.ranks_live)
        self.procs = [self._spawn(rank) for rank in range(n_ranks)]

    def _spawn(self, rank: int):
        p = self._ctx.Process(
            target=_pool_worker,
            args=(
                rank,
                self.n_ranks,
                self.task_queues[rank],
                self.result_queues[rank],
                self.inboxes,
                self.abort_event,
            ),
            name=f"spmd-pool-{self.n_ranks}-rank-{rank}",
            daemon=True,
        )
        p.start()
        return p

    def alive(self) -> bool:
        return (
            not self.broken
            and not self.needs_recycle
            and all(p.is_alive() for p in self.procs)
        )

    def dispatch(
        self,
        fn: Callable[..., Any],
        args: tuple,
        rank_args: Sequence[tuple] | None,
        machine: MachineSpec,
        timeout: float,
        transport_opts: dict | None = None,
    ) -> int | None:
        """Enqueue one run on every warm worker.

        Returns the run's sequence number, or ``None`` when the task is
        not picklable (closures, lambdas) and the caller must fall back to
        fork-per-run.  Ndarray arguments are staged through the parent's
        arena *once*, shared by every rank (workers borrow-copy them and
        the parent recycles the segments after the run), so only headers
        travel the queue pipe and a P-rank dispatch costs one staged copy,
        not P.
        """
        try:
            # Probe the function alone first: the common fallback reason
            # (a closure) is caught before any argument staging happens.
            pickle.dumps(fn)
        except Exception:
            return None
        arena = process_arena()
        tasks = []
        segments: list = []
        self.run_seq += 1
        self.board.reset()
        topts = dict(
            transport_opts or {},
            status=self.board.name,
            rboard=self.rboard.name,
        )
        try:
            shared = encode_payload((fn, args, machine, timeout), segments, arena)
            for rank in range(self.n_ranks):
                extra = rank_args[rank] if rank_args is not None else ()
                encoded_extra = encode_payload(extra, segments, arena)
                fn_enc, args_enc, machine_enc, timeout_enc = shared
                tasks.append(
                    (
                        self.run_seq,
                        pickle.dumps(
                            (fn_enc, args_enc, encoded_extra, machine_enc,
                             timeout_enc, topts)
                        ),
                    )
                )
        except Exception:
            for shm in segments:
                arena.recycle(shm)
            self.run_seq -= 1
            return None
        self.staged = segments
        for rank, task in enumerate(tasks):
            self.task_queues[rank].put(task)
        return self.run_seq

    def reclaim_staged(self) -> None:
        """Take staged argument segments back once the run is over."""
        arena = process_arena()
        for shm in self.staged:
            arena.recycle(shm)
        self.staged = []

    def drain_inboxes(self) -> None:
        """Reclaim undelivered messages left over by the finished run."""
        for inbox in self.inboxes:
            while True:
                try:
                    blob = inbox.get_nowait()
                except (queue_mod.Empty, OSError, ValueError):
                    break
                try:
                    _seq, _key, encoded = pickle.loads(blob)
                    release_payload(encoded)
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass

    def _drain_queue(self, q) -> None:
        while True:
            try:
                q.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return

    def recycle(self) -> bool:
        """Return the pool to service after a failed run (surgical repair).

        Instead of retiring the whole pool on any failure, drain every
        queue, clear the poison, reap and respawn only the *dead*
        workers (reclaiming the segments they leaked), and health-check
        all of them with a ping/pong round trip before the pool serves
        again.  Returns False when a worker fails the health check —
        the caller then falls back to full teardown + fresh pool.
        """
        dead_pids = [p.pid for p in self.procs if not p.is_alive()]
        self.reclaim_staged()
        self.drain_inboxes()
        for q in self.task_queues:
            self._drain_queue(q)
        for q in self.result_queues:
            self._drain_queue(q)
        self.abort_event.clear()
        self.board.reset()
        for rank, p in enumerate(self.procs):
            if not p.is_alive():
                p.join(timeout=0.1)
                self.procs[rank] = self._spawn(rank)
        if dead_pids:
            reap_stale_segments(dead_pids)
        if not self._health_check(flush=bool(dead_pids)):
            return False
        if dead_pids:
            # The flush ping made every surviving worker tear down its
            # arena (and the dead workers' segments were reaped above),
            # so the rank slots' live-byte truth is now zero; clear them
            # to hand those free-list bytes back to the budget.
            self.rboard.reset_ranks()
        self.needs_recycle = False
        return True

    def _health_check(
        self, flush: bool = False, grace: float = _POOL_SHUTDOWN_GRACE
    ) -> bool:
        """Ping every worker; True when all pong within ``grace`` seconds.

        A worker still wedged in the poisoned run's user code never
        reaches its task queue, so a missing pong flags it for full
        teardown instead of handing it the next dispatch.  ``flush``
        additionally makes each worker tear down its segment arena
        before ponging (required after a rank death — see the ping
        handler in :func:`_pool_worker`).
        """
        token = (os.getpid(), self.run_seq, time.monotonic_ns())
        for q in self.task_queues:
            try:
                q.put(("ping", token, flush))
            except (OSError, ValueError):  # pragma: no cover - dead queue
                return False
        pending = set(range(self.n_ranks))
        deadline = time.monotonic() + grace
        while pending and time.monotonic() < deadline:
            blobs = _drain_ready_reports(
                {rank: self.result_queues[rank] for rank in sorted(pending)},
                timeout=0.2,
            )
            for blob in blobs:
                try:
                    msg = pickle.loads(blob)
                except Exception:  # pragma: no cover - stale partial report
                    continue
                if (
                    isinstance(msg, tuple)
                    and len(msg) == 3
                    and msg[0] == "pong"
                    and msg[1] == token
                ):
                    pending.discard(msg[2])
        return not pending

    def shutdown(self) -> None:
        """Stop the workers (gracefully first, so they unlink segments).

        Every queue interaction tolerates ``BrokenPipeError``/``EPIPE``
        and closed-queue errors: at interpreter exit workers may already
        be dead (crashed ranks, daemon reaping), and teardown must not
        spray tracebacks for pipes nobody is reading.
        """
        for p, q in zip(self.procs, self.task_queues):
            if p.is_alive():
                try:
                    q.put(None)
                except (OSError, ValueError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + _POOL_SHUTDOWN_GRACE
        for p in self.procs:
            p.join(timeout=max(0.0, deadline - time.monotonic()))
        for p in self.procs:
            if p.is_alive():  # pragma: no cover - wedged worker
                p.terminate()
                p.join()
        self.drain_inboxes()
        for q in [*self.inboxes, *self.task_queues, *self.result_queues]:
            try:
                q.close()
                q.join_thread()
            except (OSError, ValueError):  # pragma: no cover - dead feeder
                pass
        self.board.close()
        self.board.unlink()
        admission_controller().unregister_usage_source(self.rboard.ranks_live)
        self.rboard.close()
        self.rboard.unlink()


_POOLS: dict[int, _RankPool] = {}
_POOLS_LOCK = threading.Lock()


def _recycle_idle_pools(needed: int) -> int:
    """Admission recycler: shut down idle warm pools, LRU-first.

    Returns the live bytes handed back to the budget.  Only pools with
    no active run are eligible; each shutdown releases the pool's arena
    free lists, pooled windows and boards.
    """
    freed = 0
    while freed < needed:
        with _POOLS_LOCK:
            idle = [p for p in _POOLS.values() if not p.busy]
            if not idle:
                break
            pool = min(idle, key=lambda p: p.last_used)
            _POOLS.pop(pool.n_ranks, None)
        worker_pids = [p.pid for p in pool.procs]
        freed += pool.rboard.ranks_live()
        pool.reclaim_staged()
        pool.shutdown()
        reap_stale_segments(worker_pids)
    return freed


admission_controller().register_recycler(_recycle_idle_pools)


def shutdown_worker_pools() -> None:
    """Tear down every persistent rank pool (idempotent).

    Called automatically at interpreter exit; call it explicitly to
    release the warm workers and their pooled shared-memory segments —
    e.g. between phases of a benchmark, or after changing environment
    variables that workers inherit at fork time.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    worker_pids = set()
    for pool in pools:
        worker_pids.update(p.pid for p in pool.procs)
        pool.reclaim_staged()
        pool.shutdown()
    # The dispatching side stages task arguments through its own arena;
    # release those pooled segments along with the workers.
    process_arena().teardown()
    # Crash audit: sweep every segment (POSIX shm and hugetlbfs) whose
    # creating worker died without unlinking it — killed ranks leak
    # arena buckets, in-flight payloads, and windows, and hugetlbfs
    # files additionally pin reserved huge pages across runs.
    reap_stale_segments(worker_pids)


atexit.register(shutdown_worker_pools)


def _get_pool(n_ranks: int) -> _RankPool:
    with _POOLS_LOCK:
        pool = _POOLS.get(n_ranks)
        if pool is not None and not pool.alive():
            # Surgical repair first: respawn dead workers and health-check
            # the rest.  Only a failed health check (or an explicitly
            # broken pool) retires the whole pool.
            if pool.broken or not pool.recycle():
                _POOLS.pop(n_ranks, None)
                worker_pids = [p.pid for p in pool.procs]
                pool.shutdown()
                reap_stale_segments(worker_pids)
                pool = None
        if pool is None:
            pool = _RankPool(n_ranks)
            _POOLS[n_ranks] = pool
        return pool


def _invalidate_pool(pool: _RankPool) -> None:
    pool.broken = True
    with _POOLS_LOCK:
        if _POOLS.get(pool.n_ranks) is pool:
            del _POOLS[pool.n_ranks]
    worker_pids = [p.pid for p in pool.procs]
    pool.shutdown()
    # A pool is only retired like this on failure — exactly when a killed
    # or crashed worker may have leaked segments (arena buckets, staged
    # payloads, windows; hugetlbfs files additionally pin reserved huge
    # pages); sweep its dead workers' names on both substrates.
    reap_stale_segments(worker_pids)


class ProcessBackend(ExecutorBackend):
    """Ranks as forked processes with shared-memory message payloads.

    ``pool=None`` (the default) consults ``REPRO_SPMD_POOL``; pass
    ``pool=False`` to force fork-per-run, ``pool=True`` to force pooling
    for picklable rank functions.

    ``windows``/``window_slot`` plumb the collective-window knobs of
    :class:`~repro.mpi.process_transport.ProcessTransport` per backend
    instance instead of process-wide environment variables
    (``REPRO_SPMD_WINDOWS`` / ``REPRO_SPMD_WINDOW_SLOT``): ``windows``
    forces the window fast path on/off, ``window_slot`` pins the initial
    per-rank slot in bytes (``0`` = size adaptively from the first
    payload).  ``None`` defers to the environment.  The options ride the
    per-run dispatch, so backends with different knobs can share one
    warm rank pool.
    """

    name = "process"

    def __init__(
        self,
        pool: bool | None = None,
        windows: bool | None = None,
        window_slot: int | None = None,
    ):
        self._pool = pool
        self._transport_opts = {
            "windows": windows,
            "window_slot": window_slot,
        }

    def _pool_enabled(self) -> bool:
        if self._pool is not None:
            return self._pool
        return bool(default_for("pool"))

    def run(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
        sanitize: int = 0,
        faults: FaultSpec | None = None,
        attempt: int = 1,
        config: RuntimeConfig | None = None,
    ) -> SpmdResult:
        self._ensure_resource_tracker()
        # The resolved RuntimeConfig (and sanitize level, fault spec,
        # attempt) ride the per-run dispatch (never the environment:
        # warm pool workers were forked long ago and would not see an
        # env change).
        shm_budget = config.shm_budget if config is not None else 0
        transport_opts = dict(
            self._transport_opts, sanitize=sanitize, faults=faults,
            attempt=attempt, config=config, shm_budget=shm_budget,
            # The run deadline (installed by the executor) ships as an
            # absolute monotonic timestamp: fork children share the
            # parent's clock, so every rank counts down the same budget.
            deadline=resources_mod.active_deadline(),
        )
        if self._pool_enabled():
            pool = _get_pool(n_ranks)
            pool.busy = True
            # The parent stages dispatch payloads through its arena:
            # govern those allocations against the same world budget,
            # mirrored onto the pool's board at the parent slot.
            gov = resources_mod.governor()
            gov.configure(
                budget=shm_budget, board=pool.rboard, slot=n_ranks
            )
            try:
                run_seq = pool.dispatch(
                    fn, args, rank_args, machine, timeout,
                    transport_opts=transport_opts,
                )
                if run_seq is not None:
                    result = self._collect_pooled(
                        pool, run_seq, n_ranks, machine
                    )
                    if result is not None:
                        return result
                    # Every worker reported _TaskLoadError: the function
                    # is newer than the (now retired) pool; fork inherits
                    # it.
            finally:
                gov.deconfigure()
                pool.busy = False
                pool.last_used = time.monotonic()
        return self._run_forked(
            n_ranks, fn, args, machine, timeout, rank_args, transport_opts
        )

    @staticmethod
    def _ensure_resource_tracker() -> None:
        from multiprocessing import resource_tracker

        # Start the shared-memory resource tracker before forking so every
        # child inherits the same tracker process; otherwise a segment
        # registered by the sending child and unlinked by the receiving
        # child looks "leaked" to the sender's private tracker.
        try:
            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker is an optimization
            pass

    def _collect_pooled(
        self, pool: _RankPool, run_seq: int, n_ranks: int, machine: MachineSpec
    ) -> SpmdResult | None:
        """Gather one pooled run's reports into an :class:`SpmdResult`.

        Returns ``None`` when no rank executed any user code because the
        dispatched function did not resolve in the warm workers — the
        caller then retries the run under fork-per-run.
        """
        try:
            return self._collect_pooled_inner(pool, run_seq, n_ranks, machine)
        finally:
            pool.reclaim_staged()

    def _collect_pooled_inner(
        self, pool: _RankPool, run_seq: int, n_ranks: int, machine: MachineSpec
    ) -> SpmdResult | None:
        values: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        ledger = CostLedger(n_ranks, machine)
        rsummaries: dict[int, dict | None] = {}
        pending = set(range(n_ranks))
        drain_deadline: float | None = None
        while pending:
            blobs = _drain_ready_reports(
                {rank: pool.result_queues[rank] for rank in sorted(pending)},
                timeout=0.1,
            )
            if not blobs:
                for rank in sorted(pending):
                    if pool.procs[rank].is_alive():
                        continue
                    # A pool worker never exits on its own: any death is a
                    # failure (segfault, os._exit in rank code, kill).
                    # Record it on the status board BEFORE poisoning the
                    # run, so survivors woken by the abort see who died.
                    exitcode = pool.procs[rank].exitcode
                    pool.board.mark_dead(rank, exitcode)
                    pool.abort_event.set()
                    failures[rank] = _rank_dead_error(
                        rank, exitcode, pool.board
                    )
                    pending.discard(rank)
                if drain_deadline is None and (
                    failures or pool.abort_event.is_set()
                ):
                    drain_deadline = time.monotonic() + _DRAIN_GRACE
                if drain_deadline is not None and (
                    time.monotonic() > drain_deadline
                ):
                    for rank in sorted(pending):
                        failures[rank] = DeadlockError(
                            f"rank {rank} did not report within "
                            f"{_DRAIN_GRACE:g}s of the run being poisoned"
                        )
                    pending.clear()
                continue
            for blob in blobs:
                report = pickle.loads(blob)
                if not (isinstance(report, tuple) and len(report) == 6):
                    continue  # stray health-check pong from a recycle
                msg_seq, rank, value, failure, costs, rsummary = report
                if msg_seq != run_seq:  # pragma: no cover - straggler report
                    continue
                pending.discard(rank)
                rsummaries[rank] = rsummary
                if costs is not None:
                    ledger.install_rank(rank, costs)
                if failure is not None:
                    failures[rank] = failure
                else:
                    values[rank] = value
        stale_task_load = any(
            isinstance(exc, _TaskLoadError) for exc in failures.values()
        ) and not any(
            isinstance(exc, RankDeadError) for exc in failures.values()
        )
        if stale_task_load:
            # The dispatched function resolves only in fresh forks.  After
            # a surgical recycle workers can have *different* fork ages, so
            # staleness may hit only a subset of ranks (the rest abort
            # without running user code to completion); any such failure
            # means the pool is stale for this function — retire it and
            # fall back to fork-per-run, which inherits the definition.
            _invalidate_pool(pool)
            return None
        if failures or pool.abort_event.is_set():
            # Poisoned run: reclaim what dead workers leaked right away,
            # and flag the pool for surgical recycling (dead workers
            # respawned, survivors health-checked) before its next use.
            dead_pids = [p.pid for p in pool.procs if not p.is_alive()]
            if dead_pids:
                reap_stale_segments(dead_pids)
            pool.needs_recycle = True
        else:
            pool.drain_inboxes()
        raise_spmd_failures(failures)
        # The parent's staging governor is still configured here (the
        # caller deconfigures it); snapshot its summary as the -1 slot.
        rsummaries[-1] = resources_mod.governor().summary()
        return SpmdResult(
            values=values,
            ledger=ledger,
            resources=ResourceReport.from_rank_summaries(rsummaries),
        )

    def _run_forked(
        self,
        n_ranks: int,
        fn: Callable[..., Any],
        args: tuple,
        machine: MachineSpec,
        timeout: float,
        rank_args: Sequence[tuple] | None,
        transport_opts: dict | None = None,
    ) -> SpmdResult:
        import multiprocessing

        # fork keeps closures working (fn and args are inherited, never
        # pickled) and makes launches cheap; the seed toolchain is
        # Linux-only so fork is always available.
        ctx = multiprocessing.get_context("fork")
        inboxes = [ctx.Queue() for _ in range(n_ranks)]
        # Per-rank result queues, like the pool (see _drain_ready_reports).
        result_queues = [ctx.Queue() for _ in range(n_ranks)]
        abort_event = ctx.Event()
        board = StatusBoard.create(n_ranks)
        rboard = ResourceBoard.create(n_ranks + 1)
        topts = dict(
            transport_opts if transport_opts is not None
            else self._transport_opts
        )
        topts["status"] = board.name
        topts["rboard"] = rboard.name
        procs = [
            ctx.Process(
                target=_process_worker,
                args=(
                    rank,
                    n_ranks,
                    fn,
                    args,
                    rank_args,
                    machine,
                    timeout,
                    inboxes,
                    result_queues[rank],
                    abort_event,
                    topts,
                ),
                name=f"spmd-rank-{rank}",
                daemon=True,
            )
            for rank in range(n_ranks)
        ]
        # Govern the parent side (drained payload releases) against the
        # same world budget the forked ranks see, at the parent slot.
        gov = resources_mod.governor()
        gov.configure(
            budget=topts.get("shm_budget", 0), board=rboard, slot=n_ranks
        )
        try:
            return self._collect_forked(
                n_ranks, machine, procs, inboxes, result_queues, abort_event,
                board,
            )
        finally:
            gov.deconfigure()
            board.close()
            board.unlink()
            rboard.close()
            rboard.unlink()

    def _collect_forked(
        self,
        n_ranks: int,
        machine: MachineSpec,
        procs,
        inboxes,
        result_queues,
        abort_event,
        board: StatusBoard,
    ) -> SpmdResult:
        for p in procs:
            p.start()

        values: list[Any] = [None] * n_ranks
        failures: dict[int, BaseException] = {}
        ledger = CostLedger(n_ranks, machine)
        rsummaries: dict[int, dict | None] = {}
        pending = set(range(n_ranks))
        # No cap on healthy execution: like the thread backend's join, the
        # parent waits as long as ranks are alive and making progress —
        # deadlocks are detected *inside* ranks by the transport timeout.
        # Only once the run is poisoned does a drain deadline bound how
        # long we wait for the remaining reports.
        drain_deadline: float | None = None
        exited_at: dict[int, float] = {}
        while pending:
            blobs = _drain_ready_reports(
                {rank: result_queues[rank] for rank in sorted(pending)},
                timeout=0.1,
            )
            if not blobs:
                for rank in sorted(pending):
                    p = procs[rank]
                    if p.is_alive() or p.exitcode is None:
                        continue
                    if p.exitcode != 0:
                        # Died without reporting (segfault, kill):
                        # record the death on the board first, then
                        # poison the siblings and synthesize the
                        # failure — survivors woken by the abort read
                        # the board and raise RankDeadError.
                        board.mark_dead(rank, p.exitcode)
                        abort_event.set()
                        failures[rank] = _rank_dead_error(
                            rank, p.exitcode, board
                        )
                        pending.discard(rank)
                        continue
                    # Exited cleanly but no report yet: the result may
                    # still be in the queue's pipe, so allow a short
                    # grace before declaring the rank lost (os._exit in
                    # rank code, a native library pulling the plug...).
                    first_seen = exited_at.setdefault(rank, time.monotonic())
                    if time.monotonic() - first_seen > _EXIT_REPORT_GRACE:
                        board.mark_dead(rank, 0)
                        abort_event.set()
                        failures[rank] = _rank_dead_error(rank, 0, board)
                        pending.discard(rank)
                if drain_deadline is None and (
                    failures or abort_event.is_set()
                ):
                    drain_deadline = time.monotonic() + _DRAIN_GRACE
                if drain_deadline is not None and (
                    time.monotonic() > drain_deadline
                ):
                    for rank in sorted(pending):
                        failures[rank] = DeadlockError(
                            f"rank {rank} did not report within "
                            f"{_DRAIN_GRACE:g}s of the run being poisoned"
                        )
                    pending.clear()
                continue
            for blob in blobs:
                _seq, rank, value, failure, costs, rsummary = (
                    pickle.loads(blob)
                )
                pending.discard(rank)
                rsummaries[rank] = rsummary
                if costs is not None:
                    ledger.install_rank(rank, costs)
                if failure is not None:
                    failures[rank] = failure
                else:
                    values[rank] = value

        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():  # pragma: no cover - wedged child
                p.terminate()
                p.join()
        self._reclaim(inboxes)
        reap_stale_segments(p.pid for p in procs)
        raise_spmd_failures(failures)
        rsummaries[-1] = resources_mod.governor().summary()
        return SpmdResult(
            values=values,
            ledger=ledger,
            resources=ResourceReport.from_rank_summaries(rsummaries),
        )

    @staticmethod
    def _reclaim(inboxes) -> None:
        """Drain undelivered messages and unlink their shm segments."""
        for inbox in inboxes:
            while True:
                try:
                    blob = inbox.get_nowait()
                except queue_mod.Empty:
                    break
                try:
                    _seq, _key, encoded = pickle.loads(blob)
                    release_payload(encoded)
                except Exception:  # pragma: no cover - best-effort cleanup
                    pass
            inbox.close()
            inbox.join_thread()


_BACKENDS: dict[str, type[ExecutorBackend]] = {
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> tuple[str, ...]:
    """Registered backend names, alphabetically."""
    return tuple(sorted(_BACKENDS))


def resolve_backend(backend: str | ExecutorBackend | None) -> ExecutorBackend:
    """Turn a ``backend=`` argument into a backend instance.

    ``None`` falls back to the run's resolved config (the
    ``REPRO_SPMD_BACKEND`` environment variable outside a run), then to
    ``"thread"``.  Instances pass through unchanged.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    name = backend if backend is not None else str(default_for("backend"))
    try:
        cls = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown SPMD backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    return cls()


def backend_from_config(cfg: RuntimeConfig) -> ExecutorBackend:
    """Build the executor backend a resolved :class:`RuntimeConfig` names.

    Unlike :func:`resolve_backend`, the backend is constructed from the
    config's own knobs (pool, windows, window slot), so a run launched
    with an explicit config never re-consults the environment.
    """
    try:
        cls = _BACKENDS[cfg.backend]
    except KeyError:
        raise ValueError(
            f"unknown SPMD backend {cfg.backend!r}; available: "
            f"{', '.join(available_backends())}"
        ) from None
    if cls is ProcessBackend:
        return ProcessBackend(
            pool=cfg.pool,
            windows=cfg.windows,
            window_slot=cfg.window_slot,
        )
    return cls()
