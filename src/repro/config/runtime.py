"""Typed runtime configuration: every ``REPRO_*`` knob as one frozen object.

Historically each runtime knob — backend, pool, arena, windows, overlap,
TSQR tree, sanitize, faults, timeout, ... — was resolved ad hoc at its
point of use by a scattered ``os.environ`` read, which meant there was no
single object describing how a run would execute (and nothing an
autotuner could decide).  This module is the fix:

* :class:`RuntimeConfig` — a frozen dataclass holding every knob, with
  the same defaults the environment switches have always had.
* :func:`resolve_config` — the *only* place knob precedence lives:
  explicit keyword > explicit config object > environment variable >
  default, resolved **once** at the ``run_spmd`` boundary.
* :func:`env_default` — the repository's single ``os.environ`` reader
  for ``REPRO_*`` knobs (repro-lint rule SPMD006 enforces that no other
  module reads them directly).  Environment variables remain the user
  surface; this resolver is their only consumer.
* :func:`set_active_config` / :func:`default_for` — the dispatch
  mechanism that threads a resolved config through transport, kernels
  and drivers without changing any public helper contract: ``run_spmd``
  installs the resolved config for the duration of the run (and ships
  it to pooled workers via the per-run dispatch), and every legacy
  helper (``overlap_enabled``, ``tsqr_tree``, ``sanitize_level``, ...)
  consults :func:`default_for` instead of the environment.

The config is plain data (str/bool/int/float only), picklable and
JSON-round-trippable, so it can ride the process backend's per-run
dispatch and be printed, saved and replayed (``repro-tucker plan``,
``dist_sthosvd(plan=...)``).
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "RuntimeConfig",
    "ConfigField",
    "CONFIG_FIELDS",
    "PLAN_ENV_VAR",
    "resolve_config",
    "resolve_plan",
    "env_default",
    "default_for",
    "set_active_config",
    "active_config",
]

#: Plan selector consulted by ``dist_sthosvd``/``dist_hooi`` when no
#: ``plan=`` keyword is given: ``default`` (or unset) keeps the explicit
#: config/environment, ``auto`` asks the perf model
#: (:func:`repro.perfmodel.autotune.plan_sthosvd`), and a JSON object
#: string replays a saved :class:`RuntimeConfig`.
PLAN_ENV_VAR = "REPRO_PLAN"

_TSQR_TREES = ("binary", "butterfly")
_SANITIZE_LEVELS = (0, 1, 2)
_COMPUTE_DTYPES = ("float64", "float32", "mixed")


def _parse_dtype(raw: str) -> str:
    value = raw.strip() or "float64"
    if value not in _COMPUTE_DTYPES:
        raise ValueError(
            f"unknown REPRO_DTYPE value {value!r}; "
            f"use one of {_COMPUTE_DTYPES}"
        )
    return value


def _parse_bool(raw: str) -> bool:
    # The historical semantics of every boolean switch: anything but "0"
    # enables it.
    return raw != "0"


def _parse_timeout(raw: str) -> float:
    raw = raw.strip()
    if not raw:
        return 120.0
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SPMD_TIMEOUT must be a number of seconds, got {raw!r}"
        ) from None


def _parse_sanitize(raw: str) -> int:
    raw = raw.strip() or "0"
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"invalid REPRO_SANITIZE value {raw!r}: use 0, 1 or 2"
        ) from None


def _parse_int(env: str) -> Callable[[str], int]:
    def parse(raw: str) -> int:
        raw = raw.strip()
        try:
            return int(raw or "0")
        except ValueError:
            raise ValueError(
                f"{env} must be an integer, got {raw!r}"
            ) from None

    return parse


_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


def _parse_bytes(env: str) -> Callable[[str], int]:
    """Byte-count parser accepting K/M/G/T suffixes (``"64M"`` = 64 MiB)."""

    def parse(raw: str) -> int:
        raw = raw.strip()
        if not raw:
            return 0
        scale = 1
        if raw[-1].lower() in _SIZE_SUFFIXES:
            scale = _SIZE_SUFFIXES[raw[-1].lower()]
            raw = raw[:-1]
        try:
            return int(float(raw) * scale)
        except ValueError:
            raise ValueError(
                f"{env} must be a byte count (integer, optionally with a "
                f"K/M/G/T suffix), got {raw!r}"
            ) from None

    return parse


def _parse_deadline(raw: str) -> float:
    raw = raw.strip()
    if not raw:
        return 0.0
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_DEADLINE must be a number of seconds, got {raw!r}"
        ) from None


@dataclass(frozen=True)
class ConfigField:
    """One runtime knob: its config field, env var, default and parser."""

    name: str
    env: str
    default: Any
    parse: Callable[[str], Any]
    #: Which layer of the stack the knob steers (for the config table).
    layer: str
    help: str

    def from_env_raw(self, raw: str | None) -> Any:
        """Value for this field given the raw env string (None = unset)."""
        if raw is None:
            return self.default
        return self.parse(raw)


#: Every runtime knob, in resolution-table order.  Defaults are exactly
#: the values the environment switches have always fallen back to.
CONFIG_FIELDS: tuple[ConfigField, ...] = (
    ConfigField(
        "backend", "REPRO_SPMD_BACKEND", "thread", str, "executor",
        "executor backend: 'thread' or 'process'",
    ),
    ConfigField(
        "pool", "REPRO_SPMD_POOL", True, _parse_bool, "executor",
        "persistent warm rank pool for the process backend",
    ),
    ConfigField(
        "arena", "REPRO_SHM_ARENA", True, _parse_bool, "transport",
        "shared-memory segment reuse (arena) in the process transport",
    ),
    ConfigField(
        "windows", "REPRO_SPMD_WINDOWS", True, _parse_bool, "transport",
        "collective windows fast path (off: point-to-point fallback)",
    ),
    ConfigField(
        "window_slot", "REPRO_SPMD_WINDOW_SLOT", 0,
        _parse_int("REPRO_SPMD_WINDOW_SLOT"), "transport",
        "fixed initial per-rank window slot in bytes (0 = adaptive)",
    ),
    ConfigField(
        "hugepages", "REPRO_SPMD_HUGEPAGES", "auto", lambda raw: raw.strip()
        or "auto", "transport",
        "huge-page backing: 'auto', '0', '1', or a directory path",
    ),
    ConfigField(
        "overlap", "REPRO_SPMD_OVERLAP", True, _parse_bool, "kernels",
        "communication/computation pipelining in the distributed kernels",
    ),
    ConfigField(
        "tsqr_tree", "REPRO_TSQR_TREE", "binary", str, "kernels",
        "TSQR reduction tree: 'binary' or 'butterfly'",
    ),
    ConfigField(
        "ttm_batch_lead", "REPRO_TTM_BATCH_LEAD", 32,
        _parse_int("REPRO_TTM_BATCH_LEAD"), "kernels",
        "max leading block columns for the batched local TTM fast path "
        "(0 disables batching)",
    ),
    ConfigField(
        "compute_dtype", "REPRO_DTYPE", "float64", _parse_dtype, "kernels",
        "kernel compute precision: 'float64', 'float32', or 'mixed' "
        "(float32 kernels + float64 refinement against the split error "
        "budget)",
    ),
    ConfigField(
        "compress_wire", "REPRO_WIRE_COMPRESS", False, _parse_bool,
        "transport",
        "downcast float64 ring-hop payloads to float32 on the wire "
        "(lossy; bit-identity suites pin it off)",
    ),
    ConfigField(
        "sanitize", "REPRO_SANITIZE", 0, _parse_sanitize, "runtime",
        "SPMD sanitizer level: 0 off, 1 protocol checks, 2 + window "
        "generation checks",
    ),
    ConfigField(
        "faults", "REPRO_FAULTS", "", lambda raw: raw.strip(), "runtime",
        "deterministic fault-injection spec string ('' = off)",
    ),
    ConfigField(
        "retry", "REPRO_SPMD_RETRY", 1, _parse_int("REPRO_SPMD_RETRY"),
        "executor",
        "max launch attempts on retryable failures (1 = no retry)",
    ),
    ConfigField(
        "timeout", "REPRO_SPMD_TIMEOUT", 120.0, _parse_timeout, "runtime",
        "deadlock-detection timeout for blocking receives, seconds",
    ),
    ConfigField(
        "shm_budget", "REPRO_SHM_BUDGET", 0,
        _parse_bytes("REPRO_SHM_BUDGET"), "resources",
        "total /dev/shm byte budget across live worlds (0 = unlimited); "
        "over-budget allocations degrade to p2p/pickle paths",
    ),
    ConfigField(
        "max_worlds", "REPRO_MAX_WORLDS", 0,
        _parse_int("REPRO_MAX_WORLDS"), "resources",
        "max concurrent SPMD worlds admitted (0 = unlimited)",
    ),
    ConfigField(
        "deadline", "REPRO_DEADLINE", 0.0, _parse_deadline, "resources",
        "cooperative wall-clock deadline for the whole run, seconds "
        "(0 = none); shared across retry attempts",
    ),
)

_FIELD_BY_NAME: dict[str, ConfigField] = {f.name: f for f in CONFIG_FIELDS}


@dataclass(frozen=True)
class RuntimeConfig:
    """A complete, validated execution plan for one SPMD run.

    Field defaults match the environment-variable defaults exactly, so
    ``RuntimeConfig()`` is the out-of-the-box configuration.  Instances
    are immutable, hashable on their field tuple, picklable (they ride
    the process backend's per-run dispatch to pooled workers) and
    JSON-round-trippable via :meth:`to_json`/:meth:`from_json`.
    """

    backend: str = "thread"
    pool: bool = True
    arena: bool = True
    windows: bool = True
    window_slot: int = 0
    hugepages: str = "auto"
    overlap: bool = True
    tsqr_tree: str = "binary"
    ttm_batch_lead: int = 32
    compute_dtype: str = "float64"
    compress_wire: bool = False
    sanitize: int = 0
    faults: str = ""
    retry: int = 1
    timeout: float = 120.0
    shm_budget: int = 0
    max_worlds: int = 0
    deadline: float = 0.0

    def __post_init__(self) -> None:
        # Normalize numeric types first (so env-parsed and user-passed
        # values validate identically), then check every knob's grammar
        # with the same messages the scattered resolvers always raised.
        object.__setattr__(self, "backend", str(self.backend))
        object.__setattr__(self, "pool", bool(self.pool))
        object.__setattr__(self, "arena", bool(self.arena))
        object.__setattr__(self, "windows", bool(self.windows))
        object.__setattr__(self, "window_slot", int(self.window_slot))
        object.__setattr__(self, "hugepages", str(self.hugepages))
        object.__setattr__(self, "overlap", bool(self.overlap))
        object.__setattr__(self, "tsqr_tree", str(self.tsqr_tree))
        object.__setattr__(self, "ttm_batch_lead", int(self.ttm_batch_lead))
        object.__setattr__(self, "compute_dtype", str(self.compute_dtype))
        object.__setattr__(self, "compress_wire", bool(self.compress_wire))
        object.__setattr__(self, "sanitize", int(self.sanitize))
        object.__setattr__(self, "faults", str(self.faults))
        object.__setattr__(self, "retry", int(self.retry))
        object.__setattr__(self, "timeout", float(self.timeout))
        object.__setattr__(self, "shm_budget", int(self.shm_budget))
        object.__setattr__(self, "max_worlds", int(self.max_worlds))
        object.__setattr__(self, "deadline", float(self.deadline))
        if self.window_slot < 0:
            raise ValueError(
                f"window_slot must be non-negative, got {self.window_slot}"
            )
        hp = self.hugepages
        if hp not in ("auto", "0", "1") and not hp.startswith(("/", ".")):
            raise ValueError(
                f"invalid REPRO_SPMD_HUGEPAGES value {hp!r}: "
                f"use 'auto', '0', or a directory path"
            )
        if self.tsqr_tree not in _TSQR_TREES:
            raise ValueError(
                f"unknown TSQR tree {self.tsqr_tree!r}; "
                f"use one of {_TSQR_TREES}"
            )
        if self.ttm_batch_lead < 0:
            raise ValueError(
                f"ttm_batch_lead must be non-negative, got "
                f"{self.ttm_batch_lead}"
            )
        if self.compute_dtype not in _COMPUTE_DTYPES:
            raise ValueError(
                f"unknown REPRO_DTYPE value {self.compute_dtype!r}; "
                f"use one of {_COMPUTE_DTYPES}"
            )
        if self.sanitize not in _SANITIZE_LEVELS:
            raise ValueError(
                f"sanitize level must be one of {_SANITIZE_LEVELS}, "
                f"got {self.sanitize}"
            )
        if self.retry < 1:
            raise ValueError(f"retry must be >= 1, got {self.retry}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.shm_budget < 0:
            raise ValueError(
                f"shm_budget must be non-negative, got {self.shm_budget}"
            )
        if self.max_worlds < 0:
            raise ValueError(
                f"max_worlds must be non-negative, got {self.max_worlds}"
            )
        if self.deadline < 0:
            raise ValueError(
                f"deadline must be non-negative, got {self.deadline}"
            )

    # -- serialization --------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RuntimeConfig":
        if not isinstance(data, dict):
            raise TypeError(
                f"RuntimeConfig data must be a mapping, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - set(_FIELD_BY_NAME))
        if unknown:
            raise ValueError(
                f"unknown RuntimeConfig key(s): {', '.join(unknown)}; "
                f"known: {', '.join(f.name for f in CONFIG_FIELDS)}"
            )
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, blob: str) -> "RuntimeConfig":
        try:
            data = json.loads(blob)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid RuntimeConfig JSON: {exc}") from None
        return cls.from_dict(data)

    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied (validated like a fresh config)."""
        unknown = sorted(set(changes) - set(_FIELD_BY_NAME))
        if unknown:
            raise ValueError(
                f"unknown RuntimeConfig key(s): {', '.join(unknown)}; "
                f"known: {', '.join(f.name for f in CONFIG_FIELDS)}"
            )
        return dataclasses.replace(self, **changes)

    def to_env(self) -> dict[str, str]:
        """The equivalent environment assignment (the user surface)."""
        out: dict[str, str] = {}
        for f in CONFIG_FIELDS:
            value = getattr(self, f.name)
            if isinstance(value, bool):
                out[f.env] = "1" if value else "0"
            else:
                out[f.env] = str(value)
        return out

    def describe(self) -> list[tuple[str, str, str, str]]:
        """Rows of ``(field, env var, value, layer)`` for display."""
        rows = []
        for f in CONFIG_FIELDS:
            value = getattr(self, f.name)
            shown = ("1" if value else "0") if isinstance(value, bool) else (
                str(value) if value != "" else "''"
            )
            rows.append((f.name, f.env, shown, f.layer))
        return rows


# -- resolution ---------------------------------------------------------


def env_default(name: str) -> Any:
    """This knob's value from its environment variable (or its default).

    The single place in the repository where a ``REPRO_*`` variable is
    read (rule SPMD006 keeps it that way).  Raises ``ValueError`` with
    the knob's historical message on an unparsable value.
    """
    field = _FIELD_BY_NAME[name]
    raw = os.environ.get(field.env)
    value = field.from_env_raw(raw)
    if name == "timeout" and value <= 0:
        raise ValueError(f"timeout must be positive, got {value}")
    if name == "sanitize" and value not in _SANITIZE_LEVELS:
        raise ValueError(
            f"sanitize level must be one of {_SANITIZE_LEVELS}, got {value}"
        )
    if name == "tsqr_tree" and value not in _TSQR_TREES:
        raise ValueError(
            f"unknown TSQR tree {value!r}; use one of {_TSQR_TREES}"
        )
    if name == "compute_dtype" and value not in _COMPUTE_DTYPES:
        raise ValueError(
            f"unknown REPRO_DTYPE value {value!r}; "
            f"use one of {_COMPUTE_DTYPES}"
        )
    return value


def resolve_config(
    config: RuntimeConfig | None = None, **overrides: Any
) -> RuntimeConfig:
    """The effective config: keyword > ``config`` object > env > default.

    ``overrides`` are per-field keywords; ``None`` means "not specified"
    (the field falls through to ``config`` or the environment).  Unknown
    keys are rejected.  The returned config is fully validated.
    """
    unknown = sorted(set(overrides) - set(_FIELD_BY_NAME))
    if unknown:
        raise ValueError(
            f"unknown RuntimeConfig key(s): {', '.join(unknown)}; "
            f"known: {', '.join(f.name for f in CONFIG_FIELDS)}"
        )
    if config is None:
        values = {f.name: env_default(f.name) for f in CONFIG_FIELDS}
    elif isinstance(config, RuntimeConfig):
        values = config.to_dict()
    else:
        raise TypeError(
            f"config must be a RuntimeConfig or None, got "
            f"{type(config).__name__}"
        )
    for key, value in overrides.items():
        if value is not None:
            values[key] = value
    return RuntimeConfig(**values)


def resolve_plan(override: str | None = None) -> str | None:
    """Resolve the plan selector: kwarg > ``REPRO_PLAN`` > none.

    Returns ``None`` for "no plan" (unset or ``"default"``), otherwise
    the raw selector string (``"auto"`` or a JSON config).
    """
    raw = override if override is not None else os.environ.get(
        PLAN_ENV_VAR, ""
    ).strip()
    if not raw or raw == "default":
        return None
    return raw


# -- active-config dispatch ---------------------------------------------

#: The config installed for the currently-executing run, if any.
#: ``run_spmd`` installs the resolved config in the launching process
#: (thread ranks and fork-per-run children see it directly) and the
#: process backend ships it to pooled workers via the run dispatch.
_ACTIVE: RuntimeConfig | None = None


def set_active_config(config: RuntimeConfig | None) -> RuntimeConfig | None:
    """Install ``config`` as the active run config; returns the previous
    one so callers can restore it (always pair with a ``finally``)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = config
    return previous


def active_config() -> RuntimeConfig | None:
    """The currently-installed run config (``None`` outside a run)."""
    return _ACTIVE


def default_for(name: str) -> Any:
    """The value a knob helper should fall back to when its argument is
    ``None``: the active run config if one is installed, else the
    environment (then the built-in default)."""
    if _ACTIVE is not None:
        return getattr(_ACTIVE, name)
    return env_default(name)
