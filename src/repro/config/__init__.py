"""Runtime configuration layer: typed knobs, one resolver, one env reader.

See :mod:`repro.config.runtime`.  Every ``REPRO_*`` environment variable
is resolved here and only here (repro-lint rule SPMD006 enforces it);
the rest of the stack receives an explicit :class:`RuntimeConfig`.
"""

from repro.config.runtime import (
    CONFIG_FIELDS,
    PLAN_ENV_VAR,
    ConfigField,
    RuntimeConfig,
    active_config,
    default_for,
    env_default,
    resolve_config,
    resolve_plan,
    set_active_config,
)

__all__ = [
    "CONFIG_FIELDS",
    "PLAN_ENV_VAR",
    "ConfigField",
    "RuntimeConfig",
    "active_config",
    "default_for",
    "env_default",
    "resolve_config",
    "resolve_plan",
    "set_active_config",
]
