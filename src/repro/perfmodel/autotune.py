"""Perf-model-driven execution-plan selection ("autotuning").

The runtime exposes several knobs whose best setting depends on the
problem, not on taste: communication/computation overlap pays only when
there is enough communication to hide *and* its extra non-blocking
messages cost less than what they hide; the TSQR reduction tree trades
latency for bandwidth with the processor-column height; the local TTM's
batched fast path is gated on a skinny-block threshold tied to BLAS
dispatch overhead.  Historically those knobs were global defaults, and a
default that wins at scale can lose outright on small problems — the
committed benchmark suite carries exactly such a case, where pipelined
``dist_sthosvd`` *pays* for overlap on a tiny tensor.

:func:`plan_sthosvd` turns the paper's alpha-beta-gamma cost model
(Secs. V-VI) into decisions: given the global shape, the target ranks
(or tolerance), the processor count and a :class:`MachineSpec`, it
consults :func:`~repro.perfmodel.algorithms.sthosvd_cost` per candidate
and returns an :class:`ExecutionPlan` — a concrete, replayable
:class:`~repro.config.RuntimeConfig` plus the predicted per-mode costs
and a human-readable record of each decision.  Consume it via
``dist_sthosvd(..., plan="auto")``, ``run_spmd(..., config=plan.config)``
or ``repro-tucker plan``.

:func:`refine_machine` closes the loop: fold a measured run time back
into the machine description so later plans are made against calibrated
constants instead of nominal peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.config import RuntimeConfig
from repro.perfmodel.algorithms import AlgorithmCost, sthosvd_cost
from repro.perfmodel.machine import EDISON, MachineSpec
from repro.util.validation import check_shape_like

#: Below roughly this many seconds of dgemm per sub-block, the Python
#: loop of :func:`~repro.tensor.ttm.ttm_blocked` is dominated by per-call
#: dispatch, so the plan widens the batched fast path to cover the block.
#: The constant is a conservative per-call overhead estimate (a NumPy
#: matmul dispatch plus loop bookkeeping), not a measured quantity; it
#: only needs to sit between "clearly tiny" and "clearly BLAS-bound".
DISPATCH_CUTOFF_SECONDS = 2.0e-6

#: Hard cap for an autotuned ``ttm_batch_lead``: beyond this the batched
#: path's staging buffer stops being "small" relative to cache, and the
#: loop's per-block dgemms are wide enough to amortize dispatch anyway.
MAX_BATCH_LEAD = 4096

#: A planned tolerance at or above this keeps the mixed pipeline's
#: precision share comfortably above the float32 noise floor (see
#: :mod:`repro.core.precision`), so float32 kernels meet the budget
#: without usually paying the float64 refinement sweep.
MIXED_TOL_FLOOR = 1.0e-3

#: Modeled communication volume (8-byte words) below which the halved
#: wire width cannot matter: latency and Python overheads dominate, and
#: test-sized tensors planned with ``plan="auto"`` must keep the
#: bit-identical float64 path.
MIXED_WORDS_FLOOR = 1 << 20


@dataclass(frozen=True)
class ExecutionPlan:
    """A selected runtime configuration plus the evidence behind it.

    Attributes
    ----------
    config:
        The concrete :class:`~repro.config.RuntimeConfig` to run with —
        pass it to ``run_spmd(config=...)`` or replay it via its JSON.
    grid:
        The processor grid the plan was evaluated on (and recommends).
    predicted:
        Modeled :class:`~repro.perfmodel.algorithms.AlgorithmCost` of
        ST-HOSVD under this plan's grid on this machine.
    decisions:
        Per-knob explanation strings, keyed by config field name.
    """

    config: RuntimeConfig
    grid: tuple[int, ...]
    predicted: AlgorithmCost
    decisions: dict[str, str]

    def describe(self) -> str:
        """Multi-line human-readable rendering for CLI / logs."""
        lines = [f"grid: {'x'.join(map(str, self.grid))}"]
        for name, reason in self.decisions.items():
            lines.append(f"{name} = {getattr(self.config, name)}: {reason}")
        lines.append(f"predicted time: {self.predicted.time:.3e} s")
        return "\n".join(lines)


def _overlap_decision(
    cost: AlgorithmCost, machine: MachineSpec
) -> tuple[bool, str]:
    """Enable pipelining iff the hideable time exceeds its latency cost.

    The overlapped schedules hide communication behind the *next* block's
    dgemm (or vice versa), so per step at most ``min(flop, comm)`` can be
    hidden; in exchange every message is posted non-blocking, which the
    ledger (and a real NIC) charges roughly one extra latency each for
    the split post/wait.  Gram and TTM are the pipelined kernels; Evecs
    has a single all-gather and never overlaps.
    """
    saving = 0.0
    messages = 0.0
    for kernel, _mode, step in cost.steps:
        if kernel not in ("gram", "ttm"):
            continue
        saving += min(step.flop_time, step.bw_time + step.lat_time)
        messages += step.messages
    overhead = machine.alpha * messages
    enabled = saving > overhead
    reason = (
        f"hideable {saving:.2e} s vs non-blocking overhead "
        f"{overhead:.2e} s ({int(messages)} msgs at alpha="
        f"{machine.alpha:.1e})"
    )
    return enabled, reason


def _tree_decision(grid: Sequence[int]) -> tuple[str, str]:
    """Pick the TSQR reduction tree from the tallest processor column.

    The binary tree reduces to a root and broadcasts the R factor back
    (2 log P rounds of half-idle ranks); the butterfly keeps every rank
    busy and leaves the result everywhere in log P rounds.  With any
    real column height the butterfly is never worse here, so it wins as
    soon as a mode column actually spans processors.
    """
    tallest = max(grid)
    if tallest > 1:
        return "butterfly", (
            f"mode columns span up to {tallest} ranks; butterfly halves "
            f"the reduction rounds vs binary+broadcast"
        )
    return "binary", "grid has no multi-rank mode column; tree is moot"


def _batch_lead_decision(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid: Sequence[int],
    machine: MachineSpec,
    mode_order: Sequence[int],
    base_lead: int,
) -> tuple[int, str]:
    """Widen the batched local-TTM gate over dispatch-bound block loops.

    Walking the ST-HOSVD shape evolution, each mode-``n`` local TTM loops
    over sub-blocks with ``lead = prod_{m<n} local I_m`` columns.  When a
    block's dgemm is cheaper than its dispatch, the loop is pure
    overhead; raise the cap to the smallest power of two covering such
    blocks so the stacked-matmul path takes them in one call.
    """
    lead_cap = base_lead
    driver = None
    current = list(shape)
    for n in mode_order:
        lead = 1
        for m in range(n):
            lead *= max(1, current[m] // grid[m])
        local_jn = max(1, current[n] // grid[n])
        local_k = max(1, ranks[n] // grid[n])
        per_block = machine.flop_time(
            2.0 * lead * local_jn * local_k,
            (lead, local_k, local_jn),
        )
        if per_block < DISPATCH_CUTOFF_SECONDS and lead > lead_cap:
            cap = 1
            while cap < lead:
                cap *= 2
            lead_cap = min(cap, MAX_BATCH_LEAD)
            driver = (n, lead, per_block)
        current[n] = ranks[n]
    if driver is None:
        return base_lead, (
            f"no dispatch-bound block loop beyond the default cap "
            f"{base_lead}"
        )
    n, lead, per_block = driver
    return lead_cap, (
        f"mode {n} loops {lead}-column blocks at {per_block:.1e} s/dgemm "
        f"(< {DISPATCH_CUTOFF_SECONDS:.0e} s dispatch); batching them"
    )


def _dtype_decision(
    cost: AlgorithmCost, tol: float | None, machine: MachineSpec
) -> tuple[str, str]:
    """Choose the compute dtype from the error budget and modeled traffic.

    Every *scheduling* knob (overlap, tree, batch lead) is pure tuning —
    bit-identical results whatever the plan picks.  The dtype knob is
    not: it changes the numbers, so it is chosen conservatively.  The
    plan stays ``float64`` unless a tolerance was planned for and is
    loose enough (>= ``MIXED_TOL_FLOOR``) that the float32 noise floor
    fits inside the error split's precision share, AND the modeled
    communication volume is large enough (>= ``MIXED_WORDS_FLOOR``
    words) for half-width payloads to buy real bandwidth.  Fixed-rank
    plans have no error budget to spend and always stay ``float64``.
    """
    words = cost.words
    if tol is None:
        return "float64", (
            "fixed-rank plan has no error budget to spend on narrow words"
        )
    if tol < MIXED_TOL_FLOOR:
        return "float64", (
            f"tol {tol:.1e} leaves no room above the float32 noise floor "
            f"(mixed needs >= {MIXED_TOL_FLOOR:.0e})"
        )
    if words < MIXED_WORDS_FLOOR:
        return "float64", (
            f"modeled traffic {words:.2e} words is below the "
            f"{float(MIXED_WORDS_FLOOR):.1e}-word floor where half-width "
            f"payloads pay"
        )
    bw_saving = 0.5 * sum(
        step.bw_time for _kernel, _mode, step in cost.steps
    )
    return "mixed", (
        f"tol {tol:.1e} funds float32 kernels over {words:.2e} words; "
        f"half-width payloads save ~{bw_saving:.2e} s of bandwidth "
        f"(beta32 = {machine.beta_for_itemsize(4):.1e} s/elem), float64 "
        f"refinement guards the budget"
    )


def plan_sthosvd(
    shape: Sequence[int],
    ranks: Sequence[int] | None = None,
    tol: float | None = None,
    n_ranks: int | None = None,
    grid: Sequence[int] | None = None,
    machine: MachineSpec = EDISON,
    base: RuntimeConfig | None = None,
    mode_order: Sequence[int] | None = None,
) -> ExecutionPlan:
    """Select a :class:`RuntimeConfig` for parallel ST-HOSVD from the model.

    Parameters
    ----------
    shape:
        Global tensor dimensions.
    ranks:
        Target Tucker ranks.  With ``tol=`` (or neither), a 10x-per-mode
        compression is assumed for planning — the decisions depend on
        relative, not exact, sizes.
    n_ranks, grid:
        Processor count or an explicit grid; exactly one is required.
        With ``n_ranks``, the grid is chosen by
        :func:`repro.distributed.grid.choose_grid`.
    machine:
        Machine constants to plan against (default: the ideal Edison
        core; pass a :func:`refine_machine` result for calibrated plans).
    base:
        Config to start from (default ``RuntimeConfig()``); the plan only
        changes the knobs it actually decides (overlap, tsqr_tree,
        ttm_batch_lead, compute_dtype), so executor/transport settings
        are preserved.
    mode_order:
        Mode processing order (default increasing).

    The selection is deterministic — a pure function of its arguments —
    so every rank of a collective call computes the identical plan.
    """
    shape = check_shape_like(shape, "shape")
    n_modes = len(shape)
    if tol is not None and ranks is not None:
        raise ValueError("specify at most one of tol= or ranks= for planning")
    if ranks is None:
        # Planning surrogate, same as choose_grid's: a 10x compression
        # per mode.  Decisions are driven by ratios, not exact ranks.
        planned_ranks = tuple(max(1, s // 10) for s in shape)
    else:
        planned_ranks = check_shape_like(ranks, "ranks")
        if len(planned_ranks) != n_modes:
            raise ValueError(
                f"need {n_modes} ranks, got {len(planned_ranks)}"
            )
    if (n_ranks is None) == (grid is None):
        raise ValueError("specify exactly one of n_ranks= or grid=")
    if grid is None:
        from repro.distributed.grid import choose_grid

        assert n_ranks is not None
        grid = choose_grid(n_ranks, shape, planned_ranks, machine)
    grid = check_shape_like(grid, "grid")
    if len(grid) != n_modes:
        raise ValueError(f"grid {grid} and shape {shape} differ in order")
    planned_ranks = tuple(
        min(s, max(r, p)) for r, s, p in zip(planned_ranks, shape, grid)
    )
    order = (
        list(range(n_modes))
        if mode_order is None
        else [int(m) for m in mode_order]
    )
    if sorted(order) != list(range(n_modes)):
        raise ValueError(f"mode_order {mode_order} is not a permutation")

    cost = sthosvd_cost(shape, planned_ranks, grid, machine, order)
    overlap, overlap_why = _overlap_decision(cost, machine)
    tree, tree_why = _tree_decision(grid)
    base_cfg = base if base is not None else RuntimeConfig()
    lead, lead_why = _batch_lead_decision(
        shape, planned_ranks, grid, machine, order, base_cfg.ttm_batch_lead
    )
    dtype, dtype_why = _dtype_decision(cost, tol, machine)
    config = base_cfg.replace(
        overlap=overlap,
        tsqr_tree=tree,
        ttm_batch_lead=lead,
        compute_dtype=dtype,
    )
    return ExecutionPlan(
        config=config,
        grid=tuple(grid),
        predicted=cost,
        decisions={
            "overlap": overlap_why,
            "tsqr_tree": tree_why,
            "ttm_batch_lead": lead_why,
            "compute_dtype": dtype_why,
        },
    )


def refine_machine(
    machine: MachineSpec,
    modeled_seconds: float,
    measured_seconds: float,
) -> MachineSpec:
    """Fold a measured run back into the machine description.

    Scales alpha, beta and gamma by the single factor
    ``measured / modeled`` — the coarsest possible calibration, but it
    preserves every *ratio* the planner's comparisons depend on while
    making absolute predictions match observation.  Feed it the modeled
    time of a plan (``plan.predicted.time``) and the measured wall time
    of the same run (e.g. the max rank total from the cost ledger).
    """
    if modeled_seconds <= 0:
        raise ValueError(
            f"modeled_seconds must be positive, got {modeled_seconds}"
        )
    if measured_seconds <= 0:
        raise ValueError(
            f"measured_seconds must be positive, got {measured_seconds}"
        )
    factor = measured_seconds / modeled_seconds
    return replace(
        machine,
        alpha=machine.alpha * factor,
        beta=machine.beta * factor,
        gamma=machine.gamma * factor,
        name=f"{machine.name}(refined x{factor:.3g})",
    )


__all__ = [
    "ExecutionPlan",
    "plan_sthosvd",
    "refine_machine",
    "DISPATCH_CUTOFF_SECONDS",
    "MAX_BATCH_LEAD",
    "MIXED_TOL_FLOOR",
    "MIXED_WORDS_FLOOR",
]
