"""Per-kernel cost and memory formulas of the parallel kernels (paper Sec. V).

Each function returns a :class:`KernelCost` splitting modeled time into
computation (gamma), bandwidth (beta), and latency (alpha) components, plus
raw counters, for one of the paper's three kernels:

* TTM (Alg. 3):      ``C = 2 gamma J K / P  +  alpha P_n log P_n
  + beta (P_n - 1) J_hat_n K / P``
* Gram (Alg. 4):     ``C = 2 gamma J_n J / P  +  2 (P_n - 1)(alpha + beta J / P)
  + 2 alpha log P_hat_n  +  2 beta (P_hat_n - 1) J_n^2 / P``
* Evecs (Alg. 5):    ``C = alpha log P_n + beta (P_n-1)/P_n J_n^2
  + gamma (10/3) J_n^3``

with ``J = prod(shape)``, ``J_hat_n = J / J_n``, ``P = prod(grid)``,
``P_hat_n = P / P_n``.  Memory formulas (in words per processor) follow the
``M_TTM`` / ``M_GRAM`` / ``M_EIG`` expressions of the same section.

Shapes need not divide evenly by the grid in real runs, but the model (like
the paper's analysis) assumes even division; callers pass exact sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.perfmodel.machine import MachineSpec
from repro.util.validation import check_axis, check_shape_like, prod


@dataclass(frozen=True)
class KernelCost:
    """Modeled cost of one parallel kernel invocation (per-processor).

    ``time`` components are seconds; counters are totals *per processor*
    (the model is symmetric across processors).
    """

    flop_time: float = 0.0
    bw_time: float = 0.0
    lat_time: float = 0.0
    flops: float = 0.0
    words: float = 0.0
    messages: float = 0.0
    memory_words: float = 0.0

    @property
    def time(self) -> float:
        """Total modeled seconds."""
        return self.flop_time + self.bw_time + self.lat_time

    def __add__(self, other: "KernelCost") -> "KernelCost":
        return KernelCost(
            flop_time=self.flop_time + other.flop_time,
            bw_time=self.bw_time + other.bw_time,
            lat_time=self.lat_time + other.lat_time,
            flops=self.flops + other.flops,
            words=self.words + other.words,
            messages=self.messages + other.messages,
            memory_words=max(self.memory_words, other.memory_words),
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Cost of ``factor`` repetitions (memory bound unchanged)."""
        return KernelCost(
            flop_time=self.flop_time * factor,
            bw_time=self.bw_time * factor,
            lat_time=self.lat_time * factor,
            flops=self.flops * factor,
            words=self.words * factor,
            messages=self.messages * factor,
            memory_words=self.memory_words,
        )


def _check_grid(
    shape: Sequence[int], grid: Sequence[int]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    shape = check_shape_like(shape, "shape")
    grid = check_shape_like(grid, "grid")
    if len(grid) != len(shape):
        raise ValueError(f"grid {grid} and shape {shape} differ in order")
    return shape, grid


def _log2(p: int) -> float:
    return math.log2(p) if p > 1 else 0.0


def ttm_cost(
    shape: Sequence[int],
    mode: int,
    new_dim: int,
    grid: Sequence[int],
    machine: MachineSpec,
) -> KernelCost:
    """Cost of the parallel TTM ``Z = Y x_n V`` with ``V`` of size ``K x J_n``.

    Implements ``C_TTM`` and ``M_TTM`` of Sec. V-B: ``P_n`` local dgemms plus
    ``P_n`` reduces across the mode-``n`` processor column.
    """
    shape, grid = _check_grid(shape, grid)
    mode = check_axis(mode, len(shape))
    if new_dim <= 0:
        raise ValueError(f"new_dim must be positive, got {new_dim}")
    j = prod(shape)
    jn = shape[mode]
    jhat = j // jn
    p = prod(grid)
    pn = grid[mode]
    phat = p // pn

    flops = 2.0 * j * new_dim / p
    # Local dgemm per block row: (K/Pn) x (Jn/Pn) times (Jn/Pn) x (Jhat/Phat);
    # these dims drive the BLAS-efficiency surrogate.
    gemm_dims = (
        max(1.0, new_dim / pn),
        max(1.0, jhat / phat),
        max(1.0, jn / pn),
    )
    lat = machine.alpha * pn * _log2(pn)
    bw_words = (pn - 1) * jhat * new_dim / p
    memory = (
        j / p  # local input tensor
        + jn * new_dim / pn  # local factor-matrix block (redundant per column)
        + jhat * new_dim / p  # local result
        + jhat * new_dim / p  # temporary W
    )
    return KernelCost(
        flop_time=machine.flop_time(flops, gemm_dims),
        bw_time=machine.beta * bw_words,
        lat_time=lat,
        flops=flops,
        words=bw_words,
        messages=float(pn * max(1, round(_log2(pn)))) if pn > 1 else 0.0,
        memory_words=memory,
    )


def gram_cost(
    shape: Sequence[int],
    mode: int,
    grid: Sequence[int],
    machine: MachineSpec,
) -> KernelCost:
    """Cost of the parallel Gram ``S = Y_(n) Y_(n)^T`` (Sec. V-C).

    Local syrk + ring exchange of local tensors around the mode-``n``
    processor column + all-reduce across the mode-``n`` processor row.
    """
    shape, grid = _check_grid(shape, grid)
    mode = check_axis(mode, len(shape))
    j = prod(shape)
    jn = shape[mode]
    p = prod(grid)
    pn = grid[mode]
    phat = p // pn

    flops = 2.0 * jn * j / p
    # Local syrk/gemm: (Jn/Pn) x (Jhat/Phat) against a peer's transpose.
    gemm_dims = (
        max(1.0, jn / pn),
        max(1.0, jn / pn),
        max(1.0, (j / jn) / phat),
    )
    # Ring exchange: (Pn - 1) iterations, each a send and a receive of the
    # local tensor (J/P words).
    ring_lat = 2.0 * (pn - 1) * machine.alpha
    ring_bw = 2.0 * (pn - 1) * (j / p)
    # All-reduce of the local block column of S (J_n^2 / P_n words) over the
    # P_hat_n-processor row: 2 alpha log + 2 beta (Phat-1)/Phat * Jn^2/Pn.
    ar_lat = 2.0 * machine.alpha * _log2(phat)
    ar_bw = 2.0 * (phat - 1) * jn * jn / p
    memory = (
        j / p  # local tensor
        + j / p  # received W
        + jn * jn / pn  # V accumulator
        + jn * jn / pn  # local S block
    )
    words = ring_bw + ar_bw
    return KernelCost(
        flop_time=machine.flop_time(flops, gemm_dims),
        bw_time=machine.beta * words,
        lat_time=ring_lat + ar_lat,
        flops=flops,
        words=words,
        messages=float(2 * (pn - 1) + (2 if phat > 1 else 0)),
        memory_words=memory,
    )


def evecs_cost(
    n_rows: int,
    rank: int,
    mode_procs: int,
    machine: MachineSpec,
) -> KernelCost:
    """Cost of the parallel eigenvector kernel (Alg. 5, Sec. V-D).

    All-gather the ``I_n x I_n`` Gram matrix over the ``P_n``-processor
    fiber, then a redundant local eigendecomposition at ``(10/3) I_n^3``
    flops, then extract the local block row of ``U^(n)``.
    """
    if n_rows <= 0 or rank <= 0 or mode_procs <= 0:
        raise ValueError("n_rows, rank, mode_procs must be positive")
    in2 = float(n_rows) * n_rows
    lat = machine.alpha * _log2(mode_procs)
    bw_words = (mode_procs - 1) / mode_procs * in2
    # Integer (10/3) n^3, matching util.flops.eig_flops exactly so the
    # analytic model and the simulator's ledger agree flop-for-flop.
    flops = float((10 * n_rows**3) // 3)
    memory = (
        in2 / mode_procs  # local S block
        + in2  # gathered S
        + float(n_rows) * rank  # full U^(n) (temporary)
        + float(n_rows) * rank / mode_procs  # local block row
    )
    return KernelCost(
        flop_time=machine.gamma * flops,
        bw_time=machine.beta * bw_words,
        lat_time=lat,
        flops=flops,
        words=bw_words,
        messages=1.0 if mode_procs > 1 else 0.0,
        memory_words=memory,
    )


def ttm_memory(
    shape: Sequence[int], mode: int, new_dim: int, grid: Sequence[int]
) -> float:
    """``M_TTM`` in words per processor (Sec. V-B)."""
    shape, grid = _check_grid(shape, grid)
    mode = check_axis(mode, len(shape))
    j = prod(shape)
    jn = shape[mode]
    jhat = j // jn
    p = prod(grid)
    pn = grid[mode]
    return j / p + jn * new_dim / pn + 2.0 * jhat * new_dim / p


def gram_memory(shape: Sequence[int], mode: int, grid: Sequence[int]) -> float:
    """``M_GRAM`` in words per processor (Sec. V-C)."""
    shape, grid = _check_grid(shape, grid)
    mode = check_axis(mode, len(shape))
    j = prod(shape)
    jn = shape[mode]
    p = prod(grid)
    pn = grid[mode]
    return 2.0 * j / p + 2.0 * jn * jn / pn


def evecs_memory(n_rows: int, rank: int, mode_procs: int) -> float:
    """``M_EIG`` in words per processor (Sec. V-D)."""
    in2 = float(n_rows) * n_rows
    return in2 / mode_procs + in2 + n_rows * rank + n_rows * rank / mode_procs
