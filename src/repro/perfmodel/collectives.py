"""Closed-form collective communication costs (paper Table I).

All formulas take the communicator size ``p``, the message size ``w`` in
words (8-byte doubles), and a :class:`~repro.perfmodel.machine.MachineSpec`.
They return modeled seconds charged to *every* participant (the model is
bulk-synchronous: a collective completes simultaneously on all members).

Table I of the paper:

====================  =====================================================
Send/Receive          ``alpha + beta * W``
All-gather            ``alpha * log P + beta * (P-1)/P * W``
Reduce                ``alpha * log P + (beta + gamma) * (P-1)/P * W``
All-reduce            ``2 alpha * log P + (2 beta + gamma) * (P-1)/P * W``
====================  =====================================================

where ``W`` is the total data size.  Following the paper's analysis the
``gamma`` terms of the reductions are dropped unless the machine spec sets
``charge_reduce_flops=True``.  Reduce-scatter and broadcast are not listed
in Table I but are needed by the non-blocked TTM fast path; we use the
standard costs from Chan et al. / Thakur et al. (the paper's refs [4], [20]).
"""

from __future__ import annotations

import math

from repro.perfmodel.machine import MachineSpec


def _log2(p: int) -> float:
    """log2(p) used for tree-based collectives; log2(1) == 0."""
    if p < 1:
        raise ValueError(f"communicator size must be >= 1, got {p}")
    return math.log2(p)


def _check_words(w: float) -> float:
    if w < 0:
        raise ValueError(f"message size must be non-negative, got {w}")
    return float(w)


def send_recv_cost(w: float, machine: MachineSpec) -> float:
    """Point-to-point: ``alpha + beta * W`` (Table I row 1)."""
    w = _check_words(w)
    return machine.alpha + machine.beta * w


def allgather_cost(p: int, w: float, machine: MachineSpec) -> float:
    """All-gather of total size ``w``: ``alpha log P + beta (P-1)/P W``."""
    w = _check_words(w)
    if p == 1:
        return 0.0
    return machine.alpha * _log2(p) + machine.beta * (p - 1) / p * w


def reduce_cost(p: int, w: float, machine: MachineSpec) -> float:
    """Reduce of total size ``w``: ``alpha log P + (beta [+ gamma]) (P-1)/P W``."""
    w = _check_words(w)
    if p == 1:
        return 0.0
    per_word = machine.beta + (machine.gamma if machine.charge_reduce_flops else 0.0)
    return machine.alpha * _log2(p) + per_word * (p - 1) / p * w


def allreduce_cost(p: int, w: float, machine: MachineSpec) -> float:
    """All-reduce: ``2 alpha log P + (2 beta [+ gamma]) (P-1)/P W``."""
    w = _check_words(w)
    if p == 1:
        return 0.0
    per_word = 2 * machine.beta + (
        machine.gamma if machine.charge_reduce_flops else 0.0
    )
    return 2 * machine.alpha * _log2(p) + per_word * (p - 1) / p * w


def reduce_scatter_cost(p: int, w: float, machine: MachineSpec) -> float:
    """Reduce-scatter: ``alpha log P + (beta [+ gamma]) (P-1)/P W``.

    Same asymptotic cost as reduce (ref [20]); the result is scattered so no
    extra bandwidth is charged for redistribution.
    """
    return reduce_cost(p, w, machine)


def bcast_cost(p: int, w: float, machine: MachineSpec) -> float:
    """Broadcast: ``alpha log P + beta (P-1)/P W`` (scatter + all-gather)."""
    w = _check_words(w)
    if p == 1:
        return 0.0
    return machine.alpha * _log2(p) + machine.beta * (p - 1) / p * w
