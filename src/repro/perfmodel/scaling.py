"""Scaling-experiment predictors that regenerate the paper's Figs. 8-9.

These helpers wrap the algorithm cost models with the experimental designs
of Sec. VIII:

* :func:`grid_sweep` — Fig. 8a: fixed problem and P, vary the processor grid,
  report the per-kernel runtime breakdown.
* :func:`mode_order_sweep` — Fig. 8b: fixed problem and grid, vary the order
  in which ST-HOSVD processes modes.
* :func:`strong_scaling_curve` — Fig. 9a: fixed problem, double P, take the
  best time over a set of candidate grids for each P.
* :func:`weak_scaling_curve` — Fig. 9b: grow problem and P together, report
  GFLOPS per core.
* :func:`enumerate_grids` / :func:`candidate_grids` — processor-grid
  factorizations, used both here and by the distributed driver's auto-grid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.perfmodel.algorithms import (
    AlgorithmCost,
    hooi_iteration_cost,
    sthosvd_cost,
)
from repro.perfmodel.machine import MachineSpec
from repro.util.validation import check_shape_like, prod


def enumerate_grids(p: int, n_modes: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``p`` into ``n_modes`` positive factors.

    The count grows quickly with the divisor structure of ``p``; for the
    paper's experiments (powers of two times small cofactors, N <= 5) it
    stays in the low thousands.
    """
    if p <= 0 or n_modes <= 0:
        raise ValueError("p and n_modes must be positive")
    if n_modes == 1:
        return [(p,)]
    grids: list[tuple[int, ...]] = []
    for d in sorted(_divisors(p)):
        for rest in enumerate_grids(p // d, n_modes - 1):
            grids.append((d,) + rest)
    return grids


def _divisors(p: int) -> list[int]:
    small, large = [], []
    d = 1
    while d * d <= p:
        if p % d == 0:
            small.append(d)
            if d != p // d:
                large.append(p // d)
        d += 1
    return small + large[::-1]


def candidate_grids(
    p: int,
    shape: Sequence[int],
    max_candidates: int = 50,
) -> list[tuple[int, ...]]:
    """A pruned set of sensible grids for ``p`` ranks and the given shape.

    Drops grids with more processors than elements in any mode, then keeps
    the ``max_candidates`` grids with the most balanced local blocks
    (minimal max local-dimension ratio).  Used by auto-grid selection and by
    the strong-scaling tuner (the paper tunes over 3-4 heuristic grids).
    """
    shape = check_shape_like(shape, "shape")
    feasible = [
        g
        for g in enumerate_grids(p, len(shape))
        if all(pn <= s for pn, s in zip(g, shape))
    ]
    if not feasible:
        raise ValueError(f"no feasible grid for P={p} on shape {tuple(shape)}")

    def balance(grid: tuple[int, ...]) -> tuple[float, int]:
        locals_ = [s / pn for s, pn in zip(shape, grid)]
        return (max(locals_) / min(locals_), grid[0])

    feasible.sort(key=balance)
    return feasible[:max_candidates]


@dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep with its modeled cost breakdown."""

    label: str
    grid: tuple[int, ...]
    cost: AlgorithmCost

    @property
    def time(self) -> float:
        return self.cost.time

    def breakdown(self) -> dict[str, float]:
        return {k: self.cost.kernel_time(k) for k in ("gram", "evecs", "ttm")}


def grid_sweep(
    shape: Sequence[int],
    ranks: Sequence[int],
    grids: Iterable[Sequence[int]],
    machine: MachineSpec,
) -> list[SweepPoint]:
    """Fig. 8a: modeled ST-HOSVD cost for each processor grid."""
    points = []
    for grid in grids:
        grid = tuple(grid)
        cost = sthosvd_cost(shape, ranks, grid, machine)
        label = "x".join(str(g) for g in grid)
        points.append(SweepPoint(label=label, grid=grid, cost=cost))
    return points


def mode_order_sweep(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid: Sequence[int],
    machine: MachineSpec,
    orders: Iterable[Sequence[int]] | None = None,
) -> list[SweepPoint]:
    """Fig. 8b: modeled ST-HOSVD cost for each mode-processing order."""
    if orders is None:
        orders = itertools.permutations(range(len(tuple(shape))))
    points = []
    for order in orders:
        order = tuple(order)
        cost = sthosvd_cost(shape, ranks, grid, machine, mode_order=order)
        label = "".join(str(m + 1) for m in order)
        points.append(SweepPoint(label=label, grid=tuple(grid), cost=cost))
    return points


@dataclass(frozen=True)
class ScalingPoint:
    """One processor count of a scaling study."""

    n_procs: int
    grid: tuple[int, ...]
    sthosvd_time: float
    hooi_time: float
    sthosvd_flops: float
    hooi_flops: float

    def gflops_per_core(self, algorithm: str = "sthosvd") -> float:
        """Aggregate useful flops per core per second, in GFLOPS."""
        if algorithm == "sthosvd":
            time, flops = self.sthosvd_time, self.sthosvd_flops
        elif algorithm == "hooi":
            time, flops = self.hooi_time, self.hooi_flops
        else:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if time == 0:
            return 0.0
        # KernelCost flops are per-processor; flops/time is per-core rate.
        return flops / time / 1e9


def _best_over_grids(
    shape: Sequence[int],
    ranks: Sequence[int],
    p: int,
    machine: MachineSpec,
    grids: Sequence[Sequence[int]] | None,
    max_candidates: int,
) -> ScalingPoint:
    grid_list = (
        [tuple(g) for g in grids]
        if grids is not None
        else candidate_grids(p, shape, max_candidates=max_candidates)
    )
    best: ScalingPoint | None = None
    for grid in grid_list:
        if prod(grid) != p:
            raise ValueError(f"grid {grid} does not use P={p} processors")
        st = sthosvd_cost(shape, ranks, grid, machine)
        ho = hooi_iteration_cost(shape, ranks, grid, machine)
        point = ScalingPoint(
            n_procs=p,
            grid=tuple(grid),
            sthosvd_time=st.time,
            hooi_time=ho.time,
            sthosvd_flops=st.flops,
            hooi_flops=ho.flops,
        )
        if best is None or point.sthosvd_time < best.sthosvd_time:
            best = point
    assert best is not None
    return best


def strong_scaling_curve(
    shape: Sequence[int],
    ranks: Sequence[int],
    proc_counts: Sequence[int],
    machine: MachineSpec,
    grids_by_p: dict[int, Sequence[Sequence[int]]] | None = None,
    max_candidates: int = 30,
) -> list[ScalingPoint]:
    """Fig. 9a: best modeled time over candidate grids for each P."""
    return [
        _best_over_grids(
            shape,
            ranks,
            p,
            machine,
            grids_by_p.get(p) if grids_by_p else None,
            max_candidates,
        )
        for p in proc_counts
    ]


def weak_scaling_curve(
    k_values: Sequence[int],
    machine: MachineSpec,
    base_dim: int = 200,
    base_rank: int = 20,
    cores_per_node: int = 24,
) -> list[ScalingPoint]:
    """Fig. 9b: weak scaling with the paper's exact configuration.

    For each ``k``: tensor ``(base_dim * k)^4``, core ``(base_rank * k)^4``,
    ``cores_per_node * k^4`` processors, best of the paper's three grid
    shapes ``1 x 1 x 4k^2 x 6k^2``, ``k x k x 4k x 6k``, ``k x 2k x 3k x 4k``.
    """
    points = []
    for k in k_values:
        if k <= 0:
            raise ValueError(f"k values must be positive, got {k}")
        shape = (base_dim * k,) * 4
        ranks = (base_rank * k,) * 4
        p = cores_per_node * k**4
        grids = [
            (1, 1, 4 * k * k, 6 * k * k),
            (k, k, 4 * k, 6 * k),
            (k, 2 * k, 3 * k, 4 * k),
        ]
        points.append(
            _best_over_grids(shape, ranks, p, machine, grids, max_candidates=1)
        )
    return points
