"""Analytic performance model (the paper's Secs. V-VI).

This package implements the alpha-beta-gamma cost model used throughout the
paper: machine descriptions (:mod:`repro.perfmodel.machine`), the collective
cost formulas of Table I (:mod:`repro.perfmodel.collectives`), per-kernel
costs of the parallel TTM / Gram / eigenvector kernels
(:mod:`repro.perfmodel.kernels`), whole-algorithm costs for ST-HOSVD and
HOOI (:mod:`repro.perfmodel.algorithms`), and the scaling-experiment
predictors that regenerate Figs. 8-9 (:mod:`repro.perfmodel.scaling`).

The same formulas drive the cost ledger inside the simulated MPI runtime, so
the analytic model is cross-checked against measured byte/flop counts in the
test suite.
"""

from repro.perfmodel.machine import MachineSpec, EDISON, EDISON_CALIBRATED, UNIT
from repro.perfmodel.collectives import (
    send_recv_cost,
    allgather_cost,
    reduce_cost,
    allreduce_cost,
    reduce_scatter_cost,
    bcast_cost,
)
from repro.perfmodel.kernels import (
    KernelCost,
    ttm_cost,
    gram_cost,
    evecs_cost,
    ttm_memory,
    gram_memory,
    evecs_memory,
)
from repro.perfmodel.algorithms import (
    AlgorithmCost,
    sthosvd_cost,
    hooi_cost,
    hooi_iteration_cost,
    sthosvd_memory_bound,
)
from repro.perfmodel.scaling import (
    strong_scaling_curve,
    weak_scaling_curve,
    grid_sweep,
    mode_order_sweep,
)
from repro.perfmodel.autotune import (
    ExecutionPlan,
    plan_sthosvd,
    refine_machine,
)

__all__ = [
    "MachineSpec",
    "EDISON",
    "EDISON_CALIBRATED",
    "UNIT",
    "send_recv_cost",
    "allgather_cost",
    "reduce_cost",
    "allreduce_cost",
    "reduce_scatter_cost",
    "bcast_cost",
    "KernelCost",
    "ttm_cost",
    "gram_cost",
    "evecs_cost",
    "ttm_memory",
    "gram_memory",
    "evecs_memory",
    "AlgorithmCost",
    "sthosvd_cost",
    "hooi_cost",
    "hooi_iteration_cost",
    "sthosvd_memory_bound",
    "strong_scaling_curve",
    "weak_scaling_curve",
    "grid_sweep",
    "mode_order_sweep",
    "ExecutionPlan",
    "plan_sthosvd",
    "refine_machine",
]
