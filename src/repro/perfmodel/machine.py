"""Machine descriptions for the alpha-beta-gamma cost model.

The model (paper Sec. V-A) charges ``alpha + W * beta`` seconds to send a
message of ``W`` words between any two processors and ``gamma`` seconds per
floating-point operation.  A *word* is one IEEE double (8 bytes).

``EDISON`` approximates one core of NERSC's Edison (Cray XC30, dual-socket
12-core Ivy Bridge, Aries dragonfly interconnect), the platform of the
paper's Sec. VIII experiments:

* peak flop rate 19.2 GFLOPS/core  ->  ``gamma = 1 / 19.2e9``
* MPI latency on Aries ~1.5 microseconds
* per-core effective bandwidth ~2.5 GB/s  ->  ``beta = 8 / 2.5e9`` s/word

Absolute constants only set the scale; the scaling *shapes* reproduced in
the benchmarks come from the cost formulas.  An ``efficiency`` factor
derates peak flops to account for non-ideal BLAS performance on small local
blocks (the paper reports 66% of peak at best).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineSpec:
    """alpha-beta-gamma machine description.

    Attributes
    ----------
    alpha:
        Per-message latency in seconds.
    beta:
        Per-word (8-byte double) transfer time in seconds.
    gamma:
        Time per floating-point operation in seconds at sustained rate.
    name:
        Human-readable identifier for reports.
    charge_reduce_flops:
        Whether the gamma term of (all-)reduce in Table I is charged.  The
        paper states the flop cost of reductions is ignored in its analysis;
        the default follows the paper so the simulator's ledger and the
        analytic formulas agree exactly.
    n_half:
        BLAS3 surface-to-volume coefficient: an ``m x k`` by ``k x n`` GEMM
        runs at ``1 / (1 + n_half * (1/m + 1/n + 1/k))`` of peak — the
        roofline-style penalty for matrices whose operand surfaces are
        large relative to the multiply volume.  ``0`` (default) models
        ideal BLAS; the paper's reported degradation at scale comes
        substantially from shrinking local blocks ("small matrix dimensions
        within local computation kernels ... degrade performance",
        Sec. VIII-D), which this surrogate captures.  See the
        EDISON_CALIBRATED preset.
    """

    alpha: float
    beta: float
    gamma: float
    name: str = "generic"
    charge_reduce_flops: bool = False
    n_half: float = 0.0

    def __post_init__(self) -> None:
        for field in ("alpha", "beta", "gamma"):
            value = getattr(self, field)
            if value < 0:
                raise ValueError(f"{field} must be non-negative, got {value}")

    @property
    def peak_flops(self) -> float:
        """Sustained flop rate implied by gamma (flops/second)."""
        if self.gamma == 0:
            raise ValueError("gamma is zero; peak flop rate is undefined")
        return 1.0 / self.gamma

    def with_efficiency(self, efficiency: float) -> "MachineSpec":
        """Return a copy whose gamma is derated by a BLAS efficiency in (0, 1]."""
        if not 0 < efficiency <= 1:
            raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
        return replace(
            self,
            gamma=self.gamma / efficiency,
            name=f"{self.name}(eff={efficiency:g})",
        )

    def blas_efficiency(self, m: float, n: float, k: float) -> float:
        """Fraction of peak an ``m x k @ k x n`` GEMM achieves.

        The surface-to-volume surrogate ``1 / (1 + n_half (1/m + 1/n + 1/k))``;
        returns 1.0 for the ideal (``n_half == 0``) machine.
        """
        if min(m, n, k) <= 0:
            raise ValueError(f"GEMM dims must be positive, got {(m, n, k)}")
        if self.n_half == 0:
            return 1.0
        return 1.0 / (1.0 + self.n_half * (1.0 / m + 1.0 / n + 1.0 / k))

    def flop_time(
        self, flops: float, gemm_dims: tuple[float, float, float] | None = None
    ) -> float:
        """Modeled seconds for ``flops`` local operations.

        ``gemm_dims = (m, n, k)`` of the dominating BLAS3 call feeds the
        efficiency surrogate; omit for spectral / vector work charged at
        plain gamma.
        """
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        eff = 1.0 if gemm_dims is None else self.blas_efficiency(*gemm_dims)
        return self.gamma * flops / eff

    def beta_for_itemsize(self, itemsize: int) -> float:
        """Per-*element* transfer time for elements of ``itemsize`` bytes.

        ``beta`` is calibrated per 8-byte word; narrower elements move
        proportionally faster on a bandwidth-bound link, so one float32
        element costs ``beta / 2``.  The ledger needs no dtype awareness
        (it charges 8-byte words of the actual payload bytes) — this is
        for the *predictive* model, which compares candidate compute
        dtypes element-for-element (see ``plan_sthosvd``'s dtype
        decision).
        """
        if itemsize <= 0:
            raise ValueError(f"itemsize must be positive, got {itemsize}")
        return self.beta * (itemsize / 8.0)

    def to_json(self) -> str:
        """Serialize every field to a JSON document (``from_json`` inverse)."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MachineSpec":
        """Rebuild a spec from :meth:`to_json` output.

        Optional fields may be omitted (dataclass defaults apply); unknown
        keys and missing required constants are rejected with the field
        names, so a hand-edited machine file fails loudly.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(
                f"machine JSON must be an object, got {type(data).__name__}"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise ValueError(f"unknown MachineSpec fields: {unknown}")
        missing = sorted({"alpha", "beta", "gamma"} - set(data))
        if missing:
            raise ValueError(f"machine JSON missing required fields: {missing}")
        return cls(**data)


#: One Edison (Cray XC30) core, the paper's experimental platform.
EDISON = MachineSpec(
    alpha=1.5e-6,
    beta=8.0 / 2.5e9,
    gamma=1.0 / 19.2e9,
    name="edison-core",
)

#: Edison with the BLAS surrogate calibrated against the paper's
#: single-node measurement: 66-67% of peak on the 200^4 strong-scaling
#: problem, whose dominant local GEMM is roughly 200 x 200 x (200^3 / 24),
#: giving 1 / (1 + c * 2/200) = 0.67 at c = 50.  Use this preset for the
#: Fig. 8-9 predictions; the ideal EDISON is kept for exact model-vs-ledger
#: accounting tests.
EDISON_CALIBRATED = MachineSpec(
    alpha=1.5e-6,
    beta=8.0 / 2.5e9,
    gamma=1.0 / 19.2e9,
    name="edison-calibrated",
    n_half=50.0,
)

#: A deliberately communication-dominated machine, useful in tests to make
#: communication terms visible against tiny local problems.
SLOW_NETWORK = MachineSpec(
    alpha=1.0e-3,
    beta=1.0e-6,
    gamma=1.0 / 19.2e9,
    name="slow-network",
)

#: Unit-cost machine: alpha = beta = gamma = 1.  With this spec the modeled
#: "time" of an operation equals (messages + words + flops), which makes the
#: ledger's accounting directly testable against hand counts.
UNIT = MachineSpec(alpha=1.0, beta=1.0, gamma=1.0, name="unit")
