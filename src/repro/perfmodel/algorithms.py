"""Whole-algorithm cost models for ST-HOSVD and HOOI (paper Sec. VI).

The models *simulate the shape evolution* of the algorithms: ST-HOSVD
processes modes in a given order, shrinking the working tensor from ``I_k``
to ``R_k`` as it goes (Sec. VI-A); one HOOI outer iteration performs, for
each mode n, the multi-TTM in all modes but n followed by Gram and Evecs,
plus the final core TTM (Sec. VI-B).  Costs are accumulated per kernel so
benchmarks can regenerate the paper's stacked-bar runtime breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.perfmodel.kernels import (
    KernelCost,
    evecs_cost,
    gram_cost,
    ttm_cost,
)
from repro.perfmodel.machine import MachineSpec
from repro.util.validation import check_shape_like, prod


@dataclass
class AlgorithmCost:
    """Aggregated modeled cost of an algorithm, broken down by kernel.

    ``by_kernel`` maps ``"ttm" | "gram" | "evecs"`` to summed
    :class:`KernelCost`; ``steps`` records ``(kernel, mode, KernelCost)`` in
    execution order, which is what the per-mode stacked bars of Fig. 8 plot.
    """

    by_kernel: dict[str, KernelCost] = field(default_factory=dict)
    steps: list[tuple[str, int, KernelCost]] = field(default_factory=list)

    def add(self, kernel: str, mode: int, cost: KernelCost) -> None:
        self.steps.append((kernel, mode, cost))
        self.by_kernel[kernel] = self.by_kernel.get(kernel, KernelCost()) + cost

    @property
    def time(self) -> float:
        return sum(c.time for c in self.by_kernel.values())

    @property
    def flops(self) -> float:
        return sum(c.flops for c in self.by_kernel.values())

    @property
    def words(self) -> float:
        return sum(c.words for c in self.by_kernel.values())

    def kernel_time(self, kernel: str) -> float:
        return self.by_kernel.get(kernel, KernelCost()).time

    def __add__(self, other: "AlgorithmCost") -> "AlgorithmCost":
        merged = AlgorithmCost()
        for kernel, mode, cost in self.steps + other.steps:
            merged.add(kernel, mode, cost)
        return merged


def _validate(
    shape: Sequence[int], ranks: Sequence[int], grid: Sequence[int]
) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
    shape = check_shape_like(shape, "shape")
    ranks = check_shape_like(ranks, "ranks")
    grid = check_shape_like(grid, "grid")
    if not len(shape) == len(ranks) == len(grid):
        raise ValueError(
            f"shape {shape}, ranks {ranks}, grid {grid} differ in order"
        )
    for r, s in zip(ranks, shape):
        if r > s:
            raise ValueError(f"rank {r} exceeds dimension {s}")
    return shape, ranks, grid


def sthosvd_cost(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid: Sequence[int],
    machine: MachineSpec,
    mode_order: Sequence[int] | None = None,
) -> AlgorithmCost:
    """Modeled cost of parallel ST-HOSVD (Alg. 1 with Sec. V kernels).

    For each mode ``n`` in ``mode_order`` the algorithm runs Gram, Evecs,
    and a TTM that truncates mode ``n`` from ``I_n`` to ``R_n``; the working
    tensor shrinks accordingly for subsequent modes.
    """
    shape, ranks, grid = _validate(shape, ranks, grid)
    n_modes = len(shape)
    order = list(range(n_modes)) if mode_order is None else list(mode_order)
    if sorted(order) != list(range(n_modes)):
        raise ValueError(f"mode_order {mode_order} is not a permutation")
    cost = AlgorithmCost()
    current = list(shape)
    for n in order:
        cost.add("gram", n, gram_cost(current, n, grid, machine))
        cost.add("evecs", n, evecs_cost(shape[n], ranks[n], grid[n], machine))
        cost.add("ttm", n, ttm_cost(current, n, ranks[n], grid, machine))
        current[n] = ranks[n]
    return cost


def hooi_iteration_cost(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid: Sequence[int],
    machine: MachineSpec,
    ttm_order: str = "increasing",
) -> AlgorithmCost:
    """Modeled cost of one HOOI outer iteration (Alg. 2 with Sec. V kernels).

    Each inner iteration n computes ``Y = X x {U^(m)T}, m != n`` as a chain
    of N-1 TTMs (the working tensor shrinks as factors are applied), then
    Gram and Evecs in mode n.  The final core TTM in mode N reuses the last
    inner iteration's Y (Alg. 2 line 9).

    ``ttm_order`` chooses how each multi-TTM chain is ordered:
    ``"increasing"`` applies modes in increasing index (the paper's default,
    untuned); ``"decreasing"`` the reverse.
    """
    shape, ranks, grid = _validate(shape, ranks, grid)
    n_modes = len(shape)
    if ttm_order not in ("increasing", "decreasing"):
        raise ValueError(f"unknown ttm_order {ttm_order!r}")
    cost = AlgorithmCost()
    for n in range(n_modes):
        chain = [m for m in range(n_modes) if m != n]
        if ttm_order == "decreasing":
            chain = chain[::-1]
        current = list(shape)
        for m in chain:
            cost.add("ttm", m, ttm_cost(current, m, ranks[m], grid, machine))
            current[m] = ranks[m]
        cost.add("gram", n, gram_cost(current, n, grid, machine))
        cost.add("evecs", n, evecs_cost(shape[n], ranks[n], grid[n], machine))
    # Final TTM producing the core from the last inner iteration's Y, whose
    # shape is R in every mode but N-1 where it is I_{N-1}.
    last = list(ranks)
    last[n_modes - 1] = shape[n_modes - 1]
    cost.add(
        "ttm",
        n_modes - 1,
        ttm_cost(last, n_modes - 1, ranks[n_modes - 1], grid, machine),
    )
    return cost


def hooi_cost(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid: Sequence[int],
    machine: MachineSpec,
    n_iterations: int = 1,
    include_init: bool = True,
) -> AlgorithmCost:
    """Modeled cost of a full HOOI run (Alg. 2): init + outer iterations.

    The paper reports ST-HOSVD and one HOOI iteration separately (Figs. 9a,
    9b); this helper composes them for end-to-end predictions, e.g. "how
    long would k iterations of refinement cost at this scale".
    """
    if n_iterations < 0:
        raise ValueError(f"n_iterations must be >= 0, got {n_iterations}")
    total = AlgorithmCost()
    if include_init:
        total = total + sthosvd_cost(shape, ranks, grid, machine)
    if n_iterations:
        per_iter = hooi_iteration_cost(shape, ranks, grid, machine)
        for _ in range(n_iterations):
            total = total + per_iter
    return total


def sthosvd_memory_bound(
    shape: Sequence[int], ranks: Sequence[int], grid: Sequence[int]
) -> float:
    """Per-processor memory upper bound for ST-HOSVD/HOOI, eq. (2) of Sec. VI.

    ``2 I / P + sum_n R_n I_n / P_n + max_n I_n^2 + max_n R_n I_n`` words.
    """
    shape, ranks, grid = _validate(shape, ranks, grid)
    i_total = prod(shape)
    p = prod(grid)
    factors = sum(r * s / pn for r, s, pn in zip(ranks, shape, grid))
    return (
        2.0 * i_total / p
        + factors
        + max(float(s) * s for s in shape)
        + max(float(r) * s for r, s in zip(ranks, shape))
    )
