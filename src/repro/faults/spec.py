"""Deterministic fault-injection spec grammar.

A fault spec is a list of clauses separated by ``,`` or ``;``; each
clause is a list of ``key=value`` fields separated by ``:``::

    rank=2:site=allreduce:nth=3:kind=crash
    rank=*:site=send:kind=delay:delay=0.2,rank=1:site=fence:kind=exception

Fields (all optional except ``kind``):

``rank``
    Rank the clause applies to, or ``*`` for every rank (default ``*``).
``site``
    Injection site name, or ``*`` for any site (default ``*``).  Sites
    are collective op names (``allreduce``, ``bcast``, ...), ``send`` /
    ``recv`` (process-transport point-to-point), ``fence`` (collective
    window waits, process backend only), ``dispatch`` (worker entry,
    before the SPMD function runs), and the resource-governor allocation
    gates ``arena`` / ``window`` (fired before the nth matching shm
    allocation, process backend only).
``nth``
    1-based hit count at which the clause fires: the clause triggers on
    the ``nth``-th time the matching rank reaches the matching site
    (default 1).  Hits are counted per concrete site name.
``kind``
    ``crash`` (SIGKILL the rank process; raises
    :class:`~repro.mpi.errors.FaultInjectedError` on the thread
    backend), ``exception`` (raise ``FaultInjectedError``), ``delay``
    (sleep ``delay`` seconds, then continue), ``enospc`` (raise a
    resource-exhaustion ``OSError`` — at the ``arena``/``window``
    allocation gates this exercises the degradation-to-p2p path), or
    ``stall`` (hold the rank at the site: sleep in small increments
    checking the run deadline so a ``REPRO_DEADLINE`` run raises
    :class:`~repro.mpi.errors.DeadlineExceededError`; without a
    deadline, behaves like ``delay``).
``p``
    Probability in ``[0, 1]`` that the clause fires when it matches
    (default 1.0).  The draw is a deterministic hash of
    ``(seed, rank, site, hit)`` — the same spec always fires at the
    same places.
``seed``
    Seed folded into the probability hash (default 0).
``delay``
    Sleep duration in seconds for ``kind=delay`` (default 0.05).
``attempt``
    1-based launch attempt the clause applies to, or ``*`` for every
    attempt (default 1 — so a :class:`~repro.faults.RetryPolicy` retry
    is not re-injured by default).

This module is import-pure: it only touches the standard library at
module level so ``repro.mpi`` internals can import it without cycles.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.config import default_for

FAULTS_ENV_VAR = "REPRO_FAULTS"

_KINDS = ("crash", "exception", "delay", "enospc", "stall")
_WILDCARD = "*"


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    kind: str
    rank: int | None = None  # None = any rank
    site: str | None = None  # None = any site
    nth: int = 1
    p: float = 1.0
    seed: int = 0
    delay: float = 0.05
    attempt: int | None = 1  # None = any attempt

    def __str__(self) -> str:
        parts = [
            f"rank={self.rank if self.rank is not None else _WILDCARD}",
            f"site={self.site if self.site is not None else _WILDCARD}",
            f"nth={self.nth}",
            f"kind={self.kind}",
        ]
        if self.p != 1.0:
            parts.append(f"p={self.p}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        if self.kind == "delay":
            parts.append(f"delay={self.delay}")
        if self.attempt != 1:
            att = self.attempt if self.attempt is not None else _WILDCARD
            parts.append(f"attempt={att}")
        return ":".join(parts)

    def matches_rank(self, rank: int) -> bool:
        return self.rank is None or self.rank == rank

    def matches_attempt(self, attempt: int) -> bool:
        return self.attempt is None or self.attempt == attempt

    def matches_site(self, site: str) -> bool:
        return self.site is None or self.site == site

    def chance(self, rank: int, site: str, hit: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for a (rank, site, hit)."""
        key = f"{self.seed}|{rank}|{site}|{hit}".encode()
        digest = hashlib.blake2b(key, digest_size=8).digest()
        (word,) = struct.unpack("<Q", digest)
        return word / 2.0**64


class FaultSpec:
    """A parsed ``REPRO_FAULTS`` spec: an ordered list of clauses."""

    def __init__(self, clauses: list[FaultClause]):
        self.clauses = list(clauses)

    def __str__(self) -> str:
        return ",".join(str(c) for c in self.clauses)

    def __repr__(self) -> str:
        return f"FaultSpec({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultSpec) and self.clauses == other.clauses

    def clauses_for(self, rank: int, attempt: int) -> list[FaultClause]:
        return [
            c
            for c in self.clauses
            if c.matches_rank(rank) and c.matches_attempt(attempt)
        ]

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        clauses = []
        for raw in text.replace(";", ",").split(","):
            raw = raw.strip()
            if not raw:
                continue
            clauses.append(_parse_clause(raw))
        if not clauses:
            raise ValueError(f"empty fault spec: {text!r}")
        return cls(clauses)


def _parse_clause(raw: str) -> FaultClause:
    fields: dict[str, str] = {}
    for part in raw.split(":"):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ValueError(
                f"bad fault field {part!r} in clause {raw!r}: expected key=value"
            )
        if key not in ("rank", "site", "nth", "kind", "p", "seed", "delay", "attempt"):
            raise ValueError(f"unknown fault field {key!r} in clause {raw!r}")
        if key in fields:
            raise ValueError(f"duplicate fault field {key!r} in clause {raw!r}")
        fields[key] = value

    kind = fields.get("kind")
    if kind is None:
        raise ValueError(f"fault clause {raw!r} is missing kind=")
    if kind not in _KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r} in clause {raw!r}; expected one of {_KINDS}"
        )

    rank = _parse_wild_int(fields.get("rank", _WILDCARD), "rank", raw, minimum=0)
    attempt = _parse_wild_int(fields.get("attempt", "1"), "attempt", raw, minimum=1)
    site = fields.get("site", _WILDCARD)
    site_val = None if site == _WILDCARD else site

    nth = _parse_int(fields.get("nth", "1"), "nth", raw)
    if nth < 1:
        raise ValueError(f"nth must be >= 1 in clause {raw!r}")
    seed = _parse_int(fields.get("seed", "0"), "seed", raw)
    p = _parse_float(fields.get("p", "1.0"), "p", raw)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1] in clause {raw!r}")
    delay = _parse_float(fields.get("delay", "0.05"), "delay", raw)
    if delay < 0:
        raise ValueError(f"delay must be >= 0 in clause {raw!r}")

    return FaultClause(
        kind=kind,
        rank=rank,
        site=site_val,
        nth=nth,
        p=p,
        seed=seed,
        delay=delay,
        attempt=attempt,
    )


def _parse_wild_int(
    value: str, name: str, raw: str, minimum: int
) -> int | None:
    if value == _WILDCARD:
        return None
    out = _parse_int(value, name, raw)
    if out < minimum:
        raise ValueError(f"{name} must be >= {minimum} in clause {raw!r}")
    return out


def _parse_int(value: str, name: str, raw: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ValueError(
            f"bad integer {value!r} for {name} in clause {raw!r}"
        ) from None


def _parse_float(value: str, name: str, raw: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(
            f"bad number {value!r} for {name} in clause {raw!r}"
        ) from None


def resolve_faults(override: "FaultSpec | str | None" = None) -> "FaultSpec | None":
    """Resolve the effective fault spec: explicit override, else the run's
    resolved config (``REPRO_FAULTS`` outside a run), else None."""
    if override is None:
        raw = str(default_for("faults")).strip()
        return FaultSpec.parse(raw) if raw else None
    if isinstance(override, FaultSpec):
        return override
    if isinstance(override, str):
        raw = override.strip()
        return FaultSpec.parse(raw) if raw else None
    raise TypeError(
        f"faults must be a FaultSpec, spec string, or None, got {type(override).__name__}"
    )
