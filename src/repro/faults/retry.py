"""Bounded retry with exponential backoff for SPMD launches.

``run_spmd(..., retry=RetryPolicy(...))`` re-launches the whole SPMD
section when it fails with a retryable error (by default a rank death).
Fault clauses default to ``attempt=1``, so an injected crash does not
re-fire on the retried launch unless the spec says ``attempt=*``.
"""

from __future__ import annotations


class RetryPolicy:
    """Retry budget for ``run_spmd``: at most ``max_attempts`` launches.

    ``backoff`` is the sleep before the first retry; each further retry
    doubles it (``backoff * 2**(attempt-1)``).  ``retry_on`` is the
    tuple of exception types that make a failed launch retryable; the
    default is ``(RankDeadError,)`` — deterministic program errors
    should not be retried.  An :class:`~repro.mpi.errors.SpmdError` is
    retryable when *any* rank's failure matches.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff: float = 0.1,
        retry_on: tuple[type[BaseException], ...] | None = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.max_attempts = int(max_attempts)
        self.backoff = float(backoff)
        self._retry_on = tuple(retry_on) if retry_on is not None else None

    @property
    def retry_on(self) -> tuple[type[BaseException], ...]:
        if self._retry_on is None:
            from repro.mpi.errors import RankDeadError

            return (RankDeadError,)
        return self._retry_on

    def delay(self, attempt: int) -> float:
        """Backoff sleep after failed attempt number ``attempt`` (1-based)."""
        return self.backoff * (2.0 ** (attempt - 1))

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether failed attempt ``attempt`` warrants another launch."""
        if attempt >= self.max_attempts:
            return False
        return self._matches(exc)

    def _matches(self, exc: BaseException) -> bool:
        failures = getattr(exc, "failures", None)
        if failures:  # SpmdError: retryable if any rank's root cause is
            return any(
                isinstance(failure, self.retry_on) for failure in failures.values()
            )
        return isinstance(exc, self.retry_on)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"backoff={self.backoff})"
        )
