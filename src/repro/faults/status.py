"""Shared-memory rank status board: liveness words + death notices.

A tiny POSIX shm segment, one per process-backend world, read and
written lock-free (each field has exactly one writer):

* header word 0: dead rank (-1 while everyone lives) — parent-written
* header word 1: dead rank's exitcode — parent-written
* per-rank slot of 5 words — written only by that rank:
  ``[state, pid, packed op name (2 words), op sequence]``

When the parent's exit monitor sees a child die it records the death
here *before* setting the abort event, so survivors woken by the abort
can raise :class:`~repro.mpi.errors.RankDeadError` naming the dead
rank, its signal, and its last collective context — instead of a
generic :class:`~repro.mpi.errors.DeadlockError`.

The segment is named with the creator's pid under the same ``rps_``
prefix as transport segments (see ``process_transport._SHM_PREFIX``)
so the crash audit ``reap_stale_segments`` reclaims boards whose
creator died.  Import-pure at module level (lazy ``repro.mpi.errors``
imports) so ``repro.mpi`` internals can import it without cycles.
"""

from __future__ import annotations

import os
import secrets
import signal
from multiprocessing import shared_memory

import numpy as np

# Keep in sync with process_transport._SHM_PREFIX (not imported to stay
# import-pure): boards must be swept by the same crash audit.
_PREFIX = "rps_"

_HEADER_WORDS = 2
_SLOT_WORDS = 5

STATE_IDLE = 0
STATE_RUNNING = 1
STATE_DONE = 2


def describe_exitcode(exitcode: int | None) -> str:
    """Human description of a child exitcode (negative = -signum)."""
    if exitcode is None:
        return "unknown exit"
    if exitcode < 0:
        try:
            return f"signal {signal.Signals(-exitcode).name}"
        except ValueError:
            return f"signal {-exitcode}"
    return f"exit code {exitcode}"


def _pack_op(op: str) -> tuple[int, int]:
    # 7 bytes per word keeps each value positive in an int64; two words
    # cover every collective name ("reduce_scatter" is 14 bytes).
    raw = op.encode("utf-8", "replace")[:14]
    lo = int.from_bytes(raw[:7], "little")
    hi = int.from_bytes(raw[7:], "little")
    return lo, hi


def _unpack_op(lo: int, hi: int) -> str:
    if lo <= 0:
        return ""
    raw = int(lo).to_bytes(7, "little") + int(hi).to_bytes(7, "little")
    return raw.rstrip(b"\x00").decode("utf-8", "replace")


class StatusBoard:
    """Liveness/death board shared between the parent and all ranks."""

    def __init__(self, shm: shared_memory.SharedMemory, n_ranks: int, owner: bool):
        self._shm = shm
        self.n_ranks = n_ranks
        self._owner = owner
        nwords = _HEADER_WORDS + n_ranks * _SLOT_WORDS
        self._words = np.frombuffer(shm.buf, dtype=np.int64, count=nwords)

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, n_ranks: int) -> "StatusBoard":
        nbytes = (_HEADER_WORDS + n_ranks * _SLOT_WORDS) * 8
        for _ in range(3):
            name = f"{_PREFIX}{os.getpid()}_{secrets.token_hex(8)}"
            try:
                shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
                break
            except FileExistsError:  # pragma: no cover - 64-bit token collision
                continue
        else:  # pragma: no cover
            raise RuntimeError("could not allocate a status board segment")
        board = cls(shm, n_ranks, owner=True)
        board.reset()
        return board

    @classmethod
    def attach(cls, name: str, n_ranks: int) -> "StatusBoard":
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, n_ranks, owner=False)

    def reset(self) -> None:
        """Parent-side: clear all state before (re)using the board."""
        self._words[:] = 0
        self._words[0] = -1

    # -- child-side liveness words ------------------------------------

    def _slot(self, rank: int) -> int:
        return _HEADER_WORDS + rank * _SLOT_WORDS

    def mark_running(self, rank: int, pid: int) -> None:
        base = self._slot(rank)
        self._words[base + 1] = pid
        self._words[base] = STATE_RUNNING

    def mark_done(self, rank: int) -> None:
        self._words[self._slot(rank)] = STATE_DONE

    def note(self, rank: int, op: str, seq: int) -> None:
        """Record the collective a rank is entering (its last-op context)."""
        base = self._slot(rank)
        lo, hi = _pack_op(op)
        self._words[base + 2] = lo
        self._words[base + 3] = hi
        self._words[base + 4] = seq

    # -- parent-side death notice -------------------------------------

    def mark_dead(self, rank: int, exitcode: int | None) -> None:
        """Record a rank death; first death wins.  Call BEFORE abort."""
        if int(self._words[0]) >= 0:
            return
        self._words[1] = exitcode if exitcode is not None else 0
        self._words[0] = rank

    def dead(self) -> tuple[int, int] | None:
        rank = int(self._words[0])
        if rank < 0:
            return None
        return rank, int(self._words[1])

    def last_context(self, rank: int) -> str | None:
        """The last collective the rank recorded, e.g. ``allreduce#3``."""
        base = self._slot(rank)
        op = _unpack_op(int(self._words[base + 2]), int(self._words[base + 3]))
        if not op:
            return None
        return f"{op}#{int(self._words[base + 4])}"

    def dead_error(self, doing: str | None = None):
        """A ``RankDeadError`` for the recorded death, or None."""
        death = self.dead()
        if death is None:
            return None
        rank, exitcode = death
        from repro.mpi.errors import RankDeadError

        msg = f"rank {rank} died ({describe_exitcode(exitcode)})"
        context = self.last_context(rank)
        if context:
            msg += f" after entering {context}"
        if doing:
            msg += f"; this rank was {doing}"
        return RankDeadError(msg, dead_rank=rank, exitcode=exitcode)

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        self._words = None  # release the buffer view before closing
        self._shm.close()

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already audited away
            pass
