"""Fault tolerance for the SPMD runtime.

Deterministic fault injection (:class:`FaultSpec` / :class:`FaultInjector`,
``REPRO_FAULTS``), bounded launch retry (:class:`RetryPolicy`), and the
shared-memory rank status board (:class:`StatusBoard`) behind prompt
rank-death detection.  See the README's "Fault tolerance" section.

This package is import-pure with respect to ``repro.mpi`` (errors are
imported lazily at raise sites), so runtime internals may import it
freely without cycles.
"""

from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.spec import FAULTS_ENV_VAR, FaultClause, FaultSpec, resolve_faults
from repro.faults.status import StatusBoard, describe_exitcode

__all__ = [
    "FAULTS_ENV_VAR",
    "FaultClause",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "StatusBoard",
    "describe_exitcode",
    "resolve_faults",
]
