"""Per-rank fault injector: fires spec clauses at named runtime sites.

One injector is built per rank per launch attempt (by the executor
backend) and threaded to every hook point: the communicator fires
collective-op sites, the process transport fires ``send``/``recv``,
collective windows fire ``fence``, and the worker entry fires
``dispatch``.  Hit counting is local to the injector, so a retried
launch starts its counters from zero and ``attempt=`` gating decides
whether clauses apply at all.
"""

from __future__ import annotations

import errno
import os
import signal
import time

from repro.faults.spec import FaultClause, FaultSpec


class FaultInjector:
    """Evaluates a :class:`FaultSpec` for one rank of one launch attempt.

    ``hard_crash`` selects what ``kind=crash`` does: ``True`` (process
    backend) SIGKILLs the calling process — the real failure mode the
    runtime must detect and contain — while ``False`` (thread backend,
    where a SIGKILL would take the whole test runner down) degrades to
    raising :class:`~repro.mpi.errors.FaultInjectedError`.
    """

    def __init__(
        self,
        spec: FaultSpec,
        rank: int,
        attempt: int = 1,
        hard_crash: bool = False,
    ):
        self._clauses = spec.clauses_for(rank, attempt)
        self._rank = rank
        self._attempt = attempt
        self._hard_crash = hard_crash
        self._hits: dict[str, int] = {}

    @property
    def active(self) -> bool:
        """Whether any clause can ever fire for this rank/attempt."""
        return bool(self._clauses)

    def fire(self, site: str) -> None:
        """Record a hit at ``site`` and trigger any matching clause.

        Called unconditionally at every hook point; cheap no-op when no
        clause matches this rank/attempt.  Hits are counted even when
        no clause matches the site so ``nth=`` is a property of the
        execution trace, not of the spec.
        """
        if not self._clauses:
            return
        hit = self._hits.get(site, 0) + 1
        self._hits[site] = hit
        for clause in self._clauses:
            if not clause.matches_site(site):
                continue
            if clause.nth != hit:
                continue
            if clause.p < 1.0 and clause.chance(self._rank, site, hit) >= clause.p:
                continue
            self._trigger(clause, site, hit)

    def _trigger(self, clause: FaultClause, site: str, hit: int) -> None:
        if clause.kind == "delay":
            time.sleep(clause.delay)
            return
        if clause.kind == "enospc":
            # Indistinguishable from real tmpfs exhaustion: the errno is
            # what routes it into the degradation ladder.
            raise OSError(
                errno.ENOSPC,
                f"injected enospc fault on rank {self._rank} at site "
                f"{site!r} (hit #{hit}, attempt {self._attempt})",
            )
        if clause.kind == "stall":
            self._stall(clause, site)
            return
        if clause.kind == "crash" and self._hard_crash:
            # The point is an *abrupt* death: no teardown, no report.
            os.kill(os.getpid(), signal.SIGKILL)
            return  # pragma: no cover - unreachable
        from repro.mpi.errors import FaultInjectedError

        raise FaultInjectedError(
            f"injected {clause.kind} fault on rank {self._rank} at site "
            f"{site!r} (hit #{hit}, attempt {self._attempt}, clause {clause})"
        )

    def _stall(self, clause: FaultClause, site: str) -> None:
        """Hold the rank here: with a run deadline installed, sleep until
        the deadline check raises (so the stalled rank itself reports
        ``DeadlineExceededError`` promptly); otherwise act like a delay."""
        from repro.resources.governor import active_deadline, check_deadline

        if active_deadline() is None:
            time.sleep(clause.delay)
            return
        while True:
            check_deadline(f"injected stall at {site!r} on rank {self._rank}")
            time.sleep(0.02)
