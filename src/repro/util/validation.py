"""Argument validation helpers used across the library.

All validators raise ``ValueError``/``TypeError`` with messages that name the
offending argument, so call sites can stay terse.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (empty product is 1).

    ``math.prod`` exists but this wrapper documents intent (tensor sizes are
    exact integers, never floats) and is patch-friendly in tests.
    """
    return math.prod(values)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_axis(axis: int, ndim: int, name: str = "mode") -> int:
    """Validate a mode index against a tensor order, allowing negatives.

    Returns the normalized (non-negative) axis.
    """
    if isinstance(axis, bool) or not isinstance(axis, int):
        raise TypeError(f"{name} must be an int, got {type(axis).__name__}")
    if not -ndim <= axis < ndim:
        raise ValueError(
            f"{name}={axis} out of range for an order-{ndim} tensor"
        )
    return axis % ndim


def check_shape_like(shape: Sequence[int], name: str = "shape") -> tuple[int, ...]:
    """Validate a tensor shape (sequence of positive ints) and return a tuple."""
    try:
        tup = tuple(int(s) for s in shape)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a sequence of ints") from exc
    if len(tup) == 0:
        raise ValueError(f"{name} must have at least one mode")
    for s in tup:
        if s <= 0:
            raise ValueError(f"all entries of {name} must be positive, got {tup}")
    return tup
