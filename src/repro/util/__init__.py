"""Shared utilities: validation, flop accounting, deterministic seeding.

These helpers are deliberately dependency-free (NumPy only) and are used by
every other subpackage.  Nothing here is specific to the Tucker algorithms.
"""

from repro.util.validation import (
    check_axis,
    check_positive_int,
    check_shape_like,
    prod,
)
from repro.util.flops import (
    gemm_flops,
    syrk_flops,
    eig_flops,
    ttm_flops,
    gram_flops,
)
from repro.util.seeding import rng_for, spawn_seed

__all__ = [
    "check_axis",
    "check_positive_int",
    "check_shape_like",
    "prod",
    "gemm_flops",
    "syrk_flops",
    "eig_flops",
    "ttm_flops",
    "gram_flops",
    "rng_for",
    "spawn_seed",
]
