"""Deterministic seeding helpers.

Every stochastic component of the library draws from a generator obtained via
:func:`rng_for`, keyed by a human-readable name plus an integer seed.  This
keeps all experiments reproducible and keeps per-rank / per-dataset streams
statistically independent (via SeedSequence spawning semantics).
"""

from __future__ import annotations

import hashlib

import numpy as np


def spawn_seed(base_seed: int, *keys: object) -> int:
    """Derive a child seed from a base seed and arbitrary hashable keys.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 of the repr of the keys, not Python's salted ``hash``).
    """
    payload = repr((int(base_seed), tuple(repr(k) for k in keys))).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(base_seed: int, *keys: object) -> np.random.Generator:
    """Return a NumPy Generator deterministically derived from seed + keys."""
    return np.random.default_rng(np.random.SeedSequence(spawn_seed(base_seed, *keys)))
