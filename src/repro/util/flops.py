"""Floating-point operation counts for the kernels used by the library.

These counts follow the conventions of the paper (Sec. V): a real fused
multiply-add counts as 2 flops, a symmetric rank-k update counts the full
(non-symmetric) cost unless stated otherwise, and the symmetric eigensolve
is charged at the paper's ``10/3 * n^3`` figure (reduction to tridiagonal
plus eigenvector accumulation).

The counts are exact *model* numbers: the simulator's ledger and the analytic
performance model must agree on them, which is enforced by tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.validation import check_axis, prod


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flops for a dense ``m x k`` times ``k x n`` matrix multiply."""
    return 2 * m * n * k


def syrk_flops(n: int, k: int, exploit_symmetry: bool = False) -> int:
    """Flops for a rank-k update producing an ``n x n`` Gram matrix.

    The paper stores both triangles explicitly and does not exploit symmetry
    in the distributed Gram (Sec. V-C), so the default counts the full
    ``2 n^2 k``.  With ``exploit_symmetry=True`` (the ``Pn == 1`` fast path)
    only ``n (n + 1) k`` flops are charged.
    """
    if exploit_symmetry:
        return n * (n + 1) * k
    return 2 * n * n * k


def eig_flops(n: int) -> int:
    """Flops for a full symmetric eigendecomposition of an ``n x n`` matrix.

    The paper charges ``(10/3) n^3`` (Alg. 5 analysis).  Rounded to an int.
    """
    return (10 * n * n * n) // 3


def ttm_flops(shape: Sequence[int], mode: int, new_dim: int) -> int:
    """Flops for a mode-``mode`` tensor-times-matrix product.

    ``Y = X x_n V`` with ``X`` of the given shape and ``V`` of size
    ``new_dim x shape[mode]`` costs ``2 * new_dim * prod(shape)`` flops
    (a GEMM with m=new_dim, k=shape[mode], n=prod(shape)/shape[mode]).
    """
    mode = check_axis(mode, len(shape))
    return 2 * new_dim * prod(shape)


def gram_flops(shape: Sequence[int], mode: int, exploit_symmetry: bool = False) -> int:
    """Flops for forming the mode-n Gram matrix ``S = Y_(n) Y_(n)^T``.

    Full (non-symmetric) cost is ``2 * shape[mode] * prod(shape)``.
    """
    mode = check_axis(mode, len(shape))
    return syrk_flops(shape[mode], prod(shape) // shape[mode], exploit_symmetry)
